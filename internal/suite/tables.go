package suite

import (
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/costsim"
	"repro/internal/exec"
	"repro/internal/spmdrt"
	"repro/internal/synctrace"
)

// Table1 prints benchmark characteristics (paper's program table).
func Table1(w io.Writer, ms []Metrics) {
	fmt.Fprintln(w, "Table 1: benchmark characteristics")
	fmt.Fprintf(w, "%-14s %6s %10s %9s %11s %8s  %s\n",
		"program", "lines", "par.loops", "regions", "replicated", "guarded", "shape")
	for _, m := range ms {
		fmt.Fprintf(w, "%-14s %6d %10d %9d %11d %8d  %s\n",
			m.Kernel.Name, m.Lines, m.ParallelLoops, m.SeqRegions,
			m.Replicated, m.Guarded, m.Kernel.Shape)
	}
}

// Table2 prints static synchronization sites before and after optimization.
func Table2(w io.Writer, ms []Metrics) {
	fmt.Fprintln(w, "Table 2: static synchronization sites (base -> optimized)")
	fmt.Fprintf(w, "%-14s %13s %12s %10s %10s %10s\n",
		"program", "base.barriers", "opt.barriers", "counters", "neighbor", "eliminated")
	for _, m := range ms {
		elim := m.StaticBase.Barriers - m.StaticOpt.Barriers
		fmt.Fprintf(w, "%-14s %13d %12d %10d %10d %10d\n",
			m.Kernel.Name, m.StaticBase.Barriers, m.StaticOpt.Barriers,
			m.StaticOpt.Counters, m.StaticOpt.Neighbors, elim)
	}
}

// Table3 prints dynamic barrier counts at the standard input — the paper's
// headline table ("barrier synchronization is reduced 29% on average and
// by several orders of magnitude for certain programs").
func Table3(w io.Writer, ms []Metrics) {
	fmt.Fprintf(w, "Table 3: dynamic synchronization executed (P=%d, standard input)\n", workersOf(ms))
	fmt.Fprintf(w, "%-14s %12s %12s %10s %12s %14s\n",
		"program", "base.barr", "opt.barr", "reduction", "opt.counter", "opt.neighbor")
	sum := 0.0
	for _, m := range ms {
		red := m.BarrierReduction()
		sum += red
		fmt.Fprintf(w, "%-14s %12d %12d %9.1f%% %12d %14d\n",
			m.Kernel.Name, m.DynBase.Barriers, m.DynOpt.Barriers,
			red*100, m.DynOpt.CounterIncrs, m.DynOpt.NeighborWaits)
	}
	if len(ms) > 0 {
		fmt.Fprintf(w, "%-14s %37.1f%%   (paper reports 29%% on its suite)\n",
			"MEAN", sum/float64(len(ms))*100)
	}
}

// TableW decomposes the elapsed-time story of Table 4 into waiting: total
// synchronization wait time (summed over workers, from the sync-event
// trace) in the fork-join baseline vs the optimized SPMD run, with each
// run's most expensive sync site. This is the per-site evidence that the
// optimizer's cheaper counters/p2p actually remove wait, not just events.
func TableW(w io.Writer, ms []Metrics) {
	fmt.Fprintf(w, "Table W: per-site synchronization wait, fork-join base vs optimized SPMD (P=%d)\n",
		workersOf(ms))
	fmt.Fprintf(w, "%-14s %11s %11s %10s  %-34s %s\n",
		"program", "base.wait", "opt.wait", "reduction", "top base site", "top opt site")
	better, traced := 0, 0
	for _, m := range ms {
		if m.BaseWait == nil || m.OptWait == nil {
			fmt.Fprintf(w, "%-14s %11s %11s %10s  (run with tracing to fill this row)\n",
				m.Kernel.Name, "-", "-", "-")
			continue
		}
		traced++
		bw, ow := m.BaseWait.TotalWait(), m.OptWait.TotalWait()
		if ow < bw {
			better++
		}
		red := 0.0
		if bw > 0 {
			red = 1 - float64(ow)/float64(bw)
		}
		fmt.Fprintf(w, "%-14s %11s %11s %9.1f%%  %-34s %s\n",
			m.Kernel.Name,
			bw.Round(time.Microsecond), ow.Round(time.Microsecond), red*100,
			topSiteCell(m.BaseWait), topSiteCell(m.OptWait))
	}
	if traced > 0 {
		fmt.Fprintf(w, "optimized wait < baseline wait on %d/%d kernels\n", better, traced)
	}
}

// topSiteCell renders a summary's costliest sync site as a table cell.
func topSiteCell(s *synctrace.Summary) string {
	top := s.TopSite()
	if top == nil {
		return "(no sync waits)"
	}
	return fmt.Sprintf("%s %s", top.Name, top.Total.Round(time.Microsecond))
}

func workersOf(ms []Metrics) int {
	if len(ms) == 0 {
		return 0
	}
	return ms[0].Workers
}

// Table4 measures elapsed time and speedup for the selected kernels across
// worker counts (the paper's performance table). Each cell is the median
// of three runs.
func Table4(w io.Writer, names []string, workerList []int) error {
	fmt.Fprintln(w, "Table 4: elapsed time, fork-join base vs optimized SPMD (median of 3)")
	fmt.Fprintf(w, "%-14s %4s %12s %12s %9s\n", "program", "P", "base", "optimized", "speedup")
	for _, name := range names {
		k, err := Get(name)
		if err != nil {
			return err
		}
		c, err := core.Compile(k.Source, core.Options{})
		if err != nil {
			return err
		}
		for _, p := range workerList {
			bt, err := medianRun(c, k, p, exec.ForkJoin, true)
			if err != nil {
				return err
			}
			ot, err := medianRun(c, k, p, exec.SPMD, false)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%-14s %4d %12s %12s %8.2fx\n",
				name, p, bt.Round(time.Microsecond), ot.Round(time.Microsecond),
				float64(bt)/float64(ot))
		}
	}
	return nil
}

func medianRun(c *core.Compiled, k Kernel, workers int, mode exec.Mode, baseline bool) (time.Duration, error) {
	var runs []time.Duration
	for i := 0; i < 3; i++ {
		var r *core.Runner
		var err error
		cfg := exec.Config{Workers: workers, Params: k.Params, Mode: mode}
		if baseline {
			r, err = c.NewBaselineRunner(cfg)
		} else {
			r, err = c.NewRunner(cfg)
		}
		if err != nil {
			return 0, err
		}
		res, err := r.Run()
		if err != nil {
			return 0, err
		}
		runs = append(runs, res.Elapsed)
	}
	// median of three
	if runs[0] > runs[1] {
		runs[0], runs[1] = runs[1], runs[0]
	}
	if runs[1] > runs[2] {
		runs[1], runs[2] = runs[2], runs[1]
	}
	if runs[0] > runs[1] {
		runs[0], runs[1] = runs[1], runs[0]
	}
	return runs[1], nil
}

// Figure1 measures per-episode barrier latency against team size for the
// three barrier implementations — the paper's motivation figure (barrier
// cost grows with the number of processors).
func Figure1(w io.Writer, sizes []int, episodes int) {
	fmt.Fprintln(w, "Figure 1: barrier latency vs processors (ns/episode)")
	fmt.Fprintf(w, "%4s %12s %12s %14s\n", "P", "central", "tree", "dissemination")
	for _, p := range sizes {
		var row []int64
		for _, kind := range []spmdrt.BarrierKind{spmdrt.Central, spmdrt.Tree, spmdrt.Dissemination} {
			team := spmdrt.NewTeam(p, kind)
			start := time.Now()
			team.Run(func(wk int) {
				for e := 0; e < episodes; e++ {
					team.Barrier(wk)
				}
			})
			row = append(row, time.Since(start).Nanoseconds()/int64(episodes))
		}
		fmt.Fprintf(w, "%4d %12d %12d %14d\n", p, row[0], row[1], row[2])
	}
}

// Figure4 prints predicted speedup curves (base fork-join vs optimized
// SPMD) from the cost simulator, under shared-memory and software-DSM
// synchronization costs — the paper's performance table, regenerated on
// the substrate we simulate because the host has no multiprocessor.
func Figure4(w io.Writer, names []string, workerList []int) error {
	fmt.Fprintln(w, "Figure 4: predicted speedup (cost simulation), base vs optimized")
	fmt.Fprintf(w, "%-14s %4s %12s %12s %14s %14s\n",
		"program", "P", "shm.base", "shm.opt", "dsm.base", "dsm.opt")
	for _, name := range names {
		k, err := Get(name)
		if err != nil {
			return err
		}
		c, err := core.Compile(k.Source, core.Options{})
		if err != nil {
			return err
		}
		for _, p := range workerList {
			row := make([]float64, 0, 4)
			for _, costs := range []costsim.Costs{costsim.SharedMemory(), costsim.SoftwareDSM()} {
				base, err := costsim.Simulate(c.Baseline, c.Plan, k.Params, p, costsim.ForkJoin, costs)
				if err != nil {
					return err
				}
				opt, err := costsim.Simulate(c.Schedule, c.Plan, k.Params, p, costsim.SPMD, costs)
				if err != nil {
					return err
				}
				row = append(row, base.Speedup(), opt.Speedup())
			}
			fmt.Fprintf(w, "%-14s %4d %11.2fx %11.2fx %13.2fx %13.2fx\n",
				name, p, row[0], row[1], row[2], row[3])
		}
	}
	return nil
}

// Figure3 renders the per-program dynamic barrier reduction as an ASCII
// bar chart (the paper's per-program reduction figure).
func Figure3(w io.Writer, ms []Metrics) {
	fmt.Fprintln(w, "Figure 3: dynamic barrier reduction by program")
	for _, m := range ms {
		red := m.BarrierReduction()
		bar := strings.Repeat("#", int(red*50+0.5))
		fmt.Fprintf(w, "%-14s %6.1f%% |%-50s|\n", m.Kernel.Name, red*100, bar)
	}
}
