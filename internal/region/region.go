// Package region constructs SPMD regions: it classifies every statement by
// how it executes inside a region, implementing the paper's §2.3 ("Creating
// SPMD regions"). Parallel loops are partitioned across the worker team;
// scalar computations whose operands are processor-local are replicated;
// everything else is guarded so a single processor (the master) executes
// it. Sequential loops that contain parallel loops become nested regions.
package region

import "repro/internal/ir"

// Mode says how a region statement executes on the worker team.
type Mode int

const (
	// ModeParallel: a parallel loop, iterations partitioned by the
	// computation partition.
	ModeParallel Mode = iota
	// ModeReplicated: executed redundantly by every worker
	// ("Replicated computations — statements whose execution can be
	// replicated across processors", §2.3).
	ModeReplicated
	// ModeGuarded: executed by the master worker only, under a guard
	// ("Guarded computations — statements that must be protected by
	// explicit guard expressions", §2.3).
	ModeGuarded
	// ModeSeqLoop: a sequential loop whose body contains parallel
	// loops; its body forms a nested region and the loop control is
	// replicated across workers.
	ModeSeqLoop
	// ModeWavefront: a serial loop over distributed data executed as a
	// relay — each worker runs its owned chunk of the iteration space in
	// ascending rank order with point-to-point handoffs, preserving
	// exact sequential semantics while enabling the paper's §3.3
	// pipelining across an enclosing sequential loop.
	ModeWavefront
)

func (m Mode) String() string {
	switch m {
	case ModeParallel:
		return "parallel"
	case ModeReplicated:
		return "replicated"
	case ModeGuarded:
		return "guarded"
	case ModeSeqLoop:
		return "seq-loop"
	case ModeWavefront:
		return "wavefront"
	default:
		return "?"
	}
}

// Info is the classification result for a program.
type Info struct {
	Modes     map[ir.Stmt]Mode
	wavefront map[*ir.Loop]bool
	// ReplicatedScalars are scalars written exclusively by replicated
	// statements: in SPMD execution each worker keeps a private copy
	// (the paper's replicated computation model), so their writes never
	// move data between processors.
	ReplicatedScalars map[string]bool
}

// Classify computes the execution mode of every statement reachable as a
// region member: the program body, and recursively the bodies of
// sequential loops that contain parallel (or wavefront) loops. Statement
// lists inside parallel loops or guarded statements are not classified
// (they execute as ordinary sequential code on their worker).
//
// wavefront lists the serial loops the partitioner found relay-executable
// (see decomp.Plan.Wavefront); pass nil to disable wavefront execution.
//
// A scalar can only live in replicated (per-worker) storage when every
// write to it is replicated; if it is also written by guarded code or by a
// reduction, the replicated statements writing it are demoted to guarded
// so the scalar has a single authoritative shared copy.
func Classify(prog *ir.Program, wavefront map[*ir.Loop]bool) *Info {
	info := &Info{Modes: map[ir.Stmt]Mode{}, ReplicatedScalars: map[string]bool{},
		wavefront: wavefront}
	classifyList(prog.Body, info)

	// Demotion pass: find scalars with mixed write contexts.
	replWrites := map[string][]ir.Stmt{}
	sharedWrites := map[string]bool{}
	for s, m := range info.Modes {
		if m == ModeReplicated {
			a := s.(*ir.Assign)
			replWrites[a.LHS.Name] = append(replWrites[a.LHS.Name], s)
		}
	}
	// Any scalar write outside a replicated statement is a shared write:
	// guarded assignments, and every assignment nested in loops
	// (reductions, privates — privates are worker-local but demotion is
	// then harmless, as a private is never also replicated-written in
	// valid schedules; being conservative here only costs performance).
	ir.WalkStmts(prog.Body, func(s ir.Stmt) bool {
		a, ok := s.(*ir.Assign)
		if !ok || a.LHS.IsArray() {
			return true
		}
		if m, classified := info.Modes[s]; classified && m == ModeReplicated {
			return true
		}
		sharedWrites[a.LHS.Name] = true
		return true
	})
	for name, stmts := range replWrites {
		if sharedWrites[name] {
			for _, s := range stmts {
				info.Modes[s] = ModeGuarded
			}
			continue
		}
		info.ReplicatedScalars[name] = true
	}
	return info
}

func classifyList(stmts []ir.Stmt, info *Info) {
	for _, s := range stmts {
		m := info.classify(s)
		info.Modes[s] = m
		if m == ModeSeqLoop {
			classifyList(s.(*ir.Loop).Body, info)
		}
	}
}

func (info *Info) classify(s ir.Stmt) Mode {
	switch n := s.(type) {
	case *ir.Loop:
		if n.Parallel {
			return ModeParallel
		}
		if info.wavefront[n] {
			return ModeWavefront
		}
		if info.containsRegionWork(n.Body) {
			return ModeSeqLoop
		}
		return ModeGuarded
	case *ir.Assign:
		if !n.LHS.IsArray() && !readsArrays(n.RHS) {
			return ModeReplicated
		}
		return ModeGuarded
	default:
		return ModeGuarded
	}
}

// containsRegionWork reports whether any loop in stmts is parallel or
// wavefront-executable (either makes the enclosing sequential loop a
// nested region).
func (info *Info) containsRegionWork(stmts []ir.Stmt) bool {
	found := false
	ir.WalkStmts(stmts, func(s ir.Stmt) bool {
		if l, ok := s.(*ir.Loop); ok && (l.Parallel || info.wavefront[l]) {
			found = true
			return false
		}
		return true
	})
	return found
}

func readsArrays(e ir.Expr) bool {
	found := false
	ir.WalkExprs(e, func(x ir.Expr) {
		if r, ok := x.(*ir.Ref); ok && r.IsArray() {
			found = true
		}
	})
	return found
}
