package region

import (
	"testing"

	"repro/internal/deps"
	"repro/internal/ir"
	"repro/internal/parallel"
	"repro/internal/parser"
)

func setupRegion(t *testing.T, src string) (*ir.Program, *Info) {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	parallel.Parallelize(deps.NewContext(prog, 1))
	return prog, Classify(prog, nil)
}

func TestModesBasic(t *testing.T) {
	prog, info := setupRegion(t, `
program p
param N
real A(N), s, c
c = 2.0
s = A(1) * c
do i = 1, N
  A(i) = A(i) * c
end do
A(1) = 0.0
end
`)
	if got := info.Modes[prog.Body[0]]; got != ModeReplicated {
		t.Errorf("c=2.0 mode = %v, want replicated", got)
	}
	if got := info.Modes[prog.Body[1]]; got != ModeGuarded {
		t.Errorf("s=A(1)*c mode = %v, want guarded (reads an array)", got)
	}
	if got := info.Modes[prog.Body[2]]; got != ModeParallel {
		t.Errorf("loop mode = %v, want parallel", got)
	}
	if got := info.Modes[prog.Body[3]]; got != ModeGuarded {
		t.Errorf("A(1)=0 mode = %v, want guarded", got)
	}
	if !info.ReplicatedScalars["c"] {
		t.Error("c should be a replicated scalar")
	}
	if info.ReplicatedScalars["s"] {
		t.Error("s is guarded-written; must not be replicated")
	}
}

func TestSeqLoopNesting(t *testing.T) {
	prog, info := setupRegion(t, `
program p
param N, T
real A(N)
do k = 1, T
  do i = 2, N
    A(i) = A(i - 1) * 0.5
  end do
  parallel do i = 1, N
    A(i) = A(i) + 1.0
  end do
end do
end
`)
	kloop := prog.Body[0].(*ir.Loop)
	if got := info.Modes[kloop]; got != ModeSeqLoop {
		t.Fatalf("k loop mode = %v, want seq-loop", got)
	}
	// Inside: the serial recurrence is guarded, the parallel loop parallel.
	if got := info.Modes[kloop.Body[0]]; got != ModeGuarded {
		t.Errorf("recurrence mode = %v, want guarded", got)
	}
	if got := info.Modes[kloop.Body[1]]; got != ModeParallel {
		t.Errorf("parallel loop mode = %v, want parallel", got)
	}
}

func TestSerialLoopWithoutParallelIsGuarded(t *testing.T) {
	prog, info := setupRegion(t, `
program p
param N
real A(N)
do i = 2, N
  A(i) = A(i - 1) + 1.0
end do
end
`)
	if got := info.Modes[prog.Body[0]]; got != ModeGuarded {
		t.Errorf("pure serial loop mode = %v, want guarded", got)
	}
}

func TestDemotionOnMixedWrites(t *testing.T) {
	// err is written by a replicated-looking statement AND by a
	// reduction: the replicated write must demote to guarded so the
	// shared slot has one writer context.
	prog, info := setupRegion(t, `
program p
param N, T
real A(N), err
do k = 1, T
  err = 0.0
  do i = 1, N
    err = err + A(i)
  end do
  do i = 1, N
    A(i) = A(i) / (err + 1.0)
  end do
end do
end
`)
	kloop := prog.Body[0].(*ir.Loop)
	reset := kloop.Body[0]
	if got := info.Modes[reset]; got != ModeGuarded {
		t.Errorf("err=0.0 mode = %v, want guarded after demotion", got)
	}
	if info.ReplicatedScalars["err"] {
		t.Error("err must not be classified as a replicated scalar")
	}
}

func TestModeStrings(t *testing.T) {
	for m, want := range map[Mode]string{
		ModeParallel: "parallel", ModeReplicated: "replicated",
		ModeGuarded: "guarded", ModeSeqLoop: "seq-loop",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestIfContainingNoParallelIsGuarded(t *testing.T) {
	prog, info := setupRegion(t, `
program p
param N
real A(N), s
if s > 0.0 then
  A(1) = 1.0
end if
end
`)
	if got := info.Modes[prog.Body[0]]; got != ModeGuarded {
		t.Errorf("if mode = %v, want guarded", got)
	}
}
