package profile

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"time"
)

// Sketch is a mergeable wait-time quantile sketch: a fixed log-scale
// histogram of nanosecond durations with 2^subBits sub-buckets per octave
// (an HDR-histogram-style mantissa/exponent bucketing). Merging two
// sketches is exact — bucket counts add — so a sketch merged across N runs
// is bit-identical to the sketch of the concatenated samples, and the only
// approximation anywhere is the bucket width: a quantile estimate is off
// from the exact sample quantile by at most one bucket boundary, i.e. a
// bounded *relative* value error of 2^-subBits (12.5%) plus rank rounding.
//
// The in-memory form is a dense count array; the serialized form is sparse
// ([bucket, count] pairs in ascending bucket order) so an idle sketch
// costs a few bytes and serialization is deterministic by construction.
type Sketch struct {
	// Count and SumNS are exact totals (SumNS saturates at MaxInt64).
	Count int64 `json:"count"`
	SumNS int64 `json:"sum_ns"`
	// MinNS/MaxNS are the exact extreme samples (valid when Count > 0).
	MinNS int64 `json:"min_ns,omitempty"`
	MaxNS int64 `json:"max_ns,omitempty"`
	// counts[b] is the number of samples in bucket b (see bucketOf).
	counts [sketchBuckets]int64
}

const (
	// subBits is the per-octave resolution: 2^subBits sub-buckets per
	// power of two, giving a worst-case relative bucket width of
	// 1/2^subBits = 12.5%.
	subBits = 3
	// sketchBuckets covers 0ns .. >146h (2^59 ns) with the final bucket
	// absorbing anything larger.
	sketchBuckets = (59-subBits+1)<<subBits + (1 << (subBits + 1))
)

// bucketOf maps a nanosecond duration to its bucket index. Values below
// 2^(subBits+1) get exact unit buckets; above, the bucket is identified by
// (exponent, top subBits mantissa bits), so consecutive buckets differ by
// a factor of at most 1+2^-subBits.
func bucketOf(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	v := uint64(ns)
	if v < 1<<(subBits+1) {
		return int(v)
	}
	exp := bits.Len64(v) - 1 // >= subBits+1
	shift := exp - subBits
	idx := shift<<subBits + int(v>>uint(shift))
	if idx >= sketchBuckets {
		return sketchBuckets - 1
	}
	return idx
}

// bucketLo returns the smallest nanosecond value mapping to bucket b.
func bucketLo(b int) int64 {
	if b < 1<<(subBits+1) {
		return int64(b)
	}
	shift := b>>subBits - 1
	top := b - shift<<subBits
	return int64(top) << uint(shift)
}

// bucketHi returns the largest nanosecond value mapping to bucket b.
func bucketHi(b int) int64 {
	if b >= sketchBuckets-1 {
		return int64(1)<<62 - 1
	}
	return bucketLo(b+1) - 1
}

// Add records one wait duration.
func (s *Sketch) Add(d time.Duration) {
	ns := int64(d)
	if ns < 0 {
		ns = 0
	}
	if s.Count == 0 || ns < s.MinNS {
		s.MinNS = ns
	}
	if ns > s.MaxNS {
		s.MaxNS = ns
	}
	s.Count++
	if sum := s.SumNS + ns; sum >= s.SumNS {
		s.SumNS = sum
	} else {
		s.SumNS = int64(1)<<62 - 1
	}
	s.counts[bucketOf(ns)]++
}

// Merge folds another sketch into this one. Counts add exactly, so
// Merge(a, b).Quantile is identical to the sketch built from a's and b's
// concatenated samples.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.Count == 0 {
		return
	}
	if s.Count == 0 || o.MinNS < s.MinNS {
		s.MinNS = o.MinNS
	}
	if o.MaxNS > s.MaxNS {
		s.MaxNS = o.MaxNS
	}
	s.Count += o.Count
	if sum := s.SumNS + o.SumNS; sum >= s.SumNS {
		s.SumNS = sum
	} else {
		s.SumNS = int64(1)<<62 - 1
	}
	for b, c := range o.counts {
		s.counts[b] += c
	}
}

// Quantile returns the q-quantile (nearest rank, matching the tracer's
// summary convention) as the midpoint of the bucket holding the ranked
// sample, clamped to the exact observed min/max. The exact sample quantile
// lies in the same bucket, so the estimate's relative error is bounded by
// the bucket width.
func (s *Sketch) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.Count-1)+0.5) + 1 // 1-based nearest rank
	if rank > s.Count {
		rank = s.Count
	}
	// The extreme ranks are tracked exactly; don't pay bucket error there.
	if rank == 1 {
		return time.Duration(s.MinNS)
	}
	if rank == s.Count {
		return time.Duration(s.MaxNS)
	}
	var cum int64
	for b, c := range s.counts {
		cum += c
		if cum >= rank {
			mid := bucketLo(b) + (bucketHi(b)-bucketLo(b))/2
			if mid < s.MinNS {
				mid = s.MinNS
			}
			if mid > s.MaxNS {
				mid = s.MaxNS
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(s.MaxNS) // unreachable when counts are consistent
}

// Mean returns the exact mean wait.
func (s *Sketch) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / s.Count)
}

// bucketPair is the sparse serialized form of one occupied bucket.
type bucketPair [2]int64

// MarshalJSON emits the sparse deterministic form:
// {"count":..,"sum_ns":..,"min_ns":..,"max_ns":..,"buckets":[[b,c],...]}
// with occupied buckets in ascending index order.
func (s Sketch) MarshalJSON() ([]byte, error) {
	var sb []byte
	sb = append(sb, '{')
	sb = append(sb, fmt.Sprintf(`"count":%d,"sum_ns":%d`, s.Count, s.SumNS)...)
	if s.Count > 0 {
		sb = append(sb, fmt.Sprintf(`,"min_ns":%d,"max_ns":%d`, s.MinNS, s.MaxNS)...)
	}
	sb = append(sb, `,"buckets":[`...)
	first := true
	for b, c := range s.counts {
		if c == 0 {
			continue
		}
		if !first {
			sb = append(sb, ',')
		}
		first = false
		sb = append(sb, fmt.Sprintf("[%d,%d]", b, c)...)
	}
	sb = append(sb, "]}"...)
	return sb, nil
}

// UnmarshalJSON parses the sparse form back into the dense array.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	var raw struct {
		Count   int64        `json:"count"`
		SumNS   int64        `json:"sum_ns"`
		MinNS   int64        `json:"min_ns"`
		MaxNS   int64        `json:"max_ns"`
		Buckets []bucketPair `json:"buckets"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	*s = Sketch{Count: raw.Count, SumNS: raw.SumNS, MinNS: raw.MinNS, MaxNS: raw.MaxNS}
	var total int64
	for _, bc := range raw.Buckets {
		b, c := bc[0], bc[1]
		if b < 0 || b >= sketchBuckets {
			return fmt.Errorf("profile: sketch bucket %d out of range [0,%d)", b, sketchBuckets)
		}
		if c < 0 {
			return fmt.Errorf("profile: sketch bucket %d has negative count %d", b, c)
		}
		s.counts[b] += c
		total += c
	}
	if total != raw.Count {
		return fmt.Errorf("profile: sketch bucket counts sum to %d, header says %d", total, raw.Count)
	}
	return nil
}
