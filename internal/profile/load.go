package profile

import (
	"errors"
	"fmt"
)

// Typed ingestion errors. Every reader in this package (Load, LoadLedger,
// Decode, MatchIdentity, Compatible) reports failures wrapping one of
// these sentinels, so callers branch with errors.Is instead of matching
// message text:
//
//   - ErrEnvelope: the bytes are not a well-formed profile/ledger envelope
//     (wrong tool name, malformed JSON, bad payload shape).
//   - ErrSchema: the envelope decodes but its profile schema is newer than
//     this build reads (or invalid).
//   - ErrHashMismatch: the profile's identity hashes (program hash,
//     schedule hash) do not match the compilation it was offered to — the
//     staleness signal the feedback-directed optimizer keys on.
//   - ErrIncompatible: identity hashes aside, the profile describes a
//     different configuration (mode, workers, backend) than required.
var (
	ErrEnvelope     = errors.New("profile: not a profile envelope")
	ErrSchema       = errors.New("profile: unsupported schema")
	ErrHashMismatch = errors.New("profile: identity hash mismatch")
	ErrIncompatible = errors.New("profile: incompatible configuration")
)

// Load reads and decodes an envelope-wrapped profile from path. It is the
// one ingestion entry point every consumer (spmdprof, barrierc -fdo,
// spmdrun -profile-in) shares; failures wrap ErrEnvelope or ErrSchema.
func Load(path string) (*Profile, error) {
	return ReadFile(path)
}

// LoadLedger reads every record of the append-only run ledger at path.
// Failures wrap ErrEnvelope or ErrSchema and name the offending line.
func LoadLedger(path string) ([]*LedgerRecord, error) {
	return ReadLedgerFile(path)
}

// MatchIdentity checks the profile against a compilation's identity
// hashes: the error wraps ErrHashMismatch and names the mismatching hash,
// so a stale profile (edited source, re-optimized schedule) is a typed,
// testable condition rather than a silent mis-merge.
func (p *Profile) MatchIdentity(programHash, scheduleHash string) error {
	if p.ProgramHash != programHash {
		return fmt.Errorf("%w: program hash %s, compilation has %s",
			ErrHashMismatch, p.ProgramHash, programHash)
	}
	if p.ScheduleHash != scheduleHash {
		return fmt.Errorf("%w: schedule hash %s, compilation has %s",
			ErrHashMismatch, p.ScheduleHash, scheduleHash)
	}
	return nil
}
