package profile

import (
	"bufio"
	"fmt"
	"io"
	"os"

	"repro/internal/envelope"
	"repro/internal/remarks"
)

// Encode wraps the profile in the versioned envelope (indented, trailing
// newline) — the `spmdrun -profile-out` / `spmdprof merge -o` file format.
// The profile is normalized first so the bytes are a deterministic
// function of the profile's contents: encode(decode(b)) == b for any b
// this package emitted.
func Encode(p *Profile) ([]byte, error) {
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return envelope.Wrap(envelope.ToolProfile, p)
}

// WriteFile encodes the profile and writes it to path.
func WriteFile(path string, p *Profile) error {
	b, err := Encode(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Decode parses an envelope-wrapped profile and validates it.
func Decode(data []byte) (*Profile, error) {
	env, err := envelope.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEnvelope, err)
	}
	if env.Tool != envelope.ToolProfile {
		return nil, fmt.Errorf("%w: envelope is from %q, want %q", ErrEnvelope, env.Tool, envelope.ToolProfile)
	}
	var p Profile
	if err := env.Into(&p); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEnvelope, err)
	}
	if p.Schema < 1 || p.Schema > Schema {
		return nil, fmt.Errorf("%w: schema %d (this build reads 1..%d)", ErrSchema, p.Schema, Schema)
	}
	if err := p.normalize(); err != nil {
		return nil, err
	}
	return &p, nil
}

// ReadFile reads and decodes an envelope-wrapped profile.
func ReadFile(path string) (*Profile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return p, nil
}

// RunMeta is the result metadata a ledger record carries alongside the
// profile: what the run produced, not just what it waited on.
type RunMeta struct {
	// Verdict is the baseline-vs-optimized comparison verdict ("PASS",
	// "FAIL", or "" when no verification ran).
	Verdict string `json:"verdict,omitempty"`
	// WallNS is the run's wall-clock time.
	WallNS int64 `json:"wall_ns"`
	// Checksum fingerprints the computed output arrays.
	Checksum string `json:"checksum,omitempty"`
	// Attempts counts executor attempts (>1 means chaos recovery kicked in).
	Attempts int `json:"attempts,omitempty"`
}

// LedgerRecord is one append-only ledger line's payload: the run's
// profile, the compile's analysis bill, and the result metadata.
type LedgerRecord struct {
	// TimeUnixNS stamps when the run finished.
	TimeUnixNS int64 `json:"time_unix_ns"`
	// TraceID joins this row with the run's span export and envelope
	// (the id `spmdrun -json` reports; "" for pre-span ledgers).
	TraceID string         `json:"trace_id,omitempty"`
	Result  RunMeta        `json:"result"`
	Costs   *remarks.Costs `json:"costs,omitempty"`
	Profile *Profile       `json:"profile"`
}

// AppendLedger appends one envelope-wrapped record line to the ledger at
// path, creating the file if needed. One envelope per line: readers split
// on newlines, so a torn final line (crash mid-append) loses at most that
// record.
func AppendLedger(path string, rec *LedgerRecord) error {
	if rec.Profile == nil {
		return fmt.Errorf("profile: ledger record has no profile")
	}
	if err := rec.Profile.normalize(); err != nil {
		return err
	}
	line, err := envelope.WrapLine(envelope.ToolLedger, rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLedger parses every record in an append-only ledger. Blank lines are
// skipped; a malformed line is an error naming its line number.
func ReadLedger(r io.Reader) ([]*LedgerRecord, error) {
	var recs []*LedgerRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		env, err := envelope.Decode(line)
		if err != nil {
			return nil, fmt.Errorf("ledger line %d: %w: %w", lineNo, ErrEnvelope, err)
		}
		if env.Tool != envelope.ToolLedger {
			return nil, fmt.Errorf("ledger line %d: %w: envelope is from %q, want %q",
				lineNo, ErrEnvelope, env.Tool, envelope.ToolLedger)
		}
		var rec LedgerRecord
		if err := env.Into(&rec); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w: %w", lineNo, ErrEnvelope, err)
		}
		if rec.Profile == nil {
			return nil, fmt.Errorf("ledger line %d: record has no profile", lineNo)
		}
		if err := rec.Profile.normalize(); err != nil {
			return nil, fmt.Errorf("ledger line %d: %w", lineNo, err)
		}
		recs = append(recs, &rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// ReadLedgerFile reads every record in the ledger at path.
func ReadLedgerFile(path string) ([]*LedgerRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}
