// Package profile is the durable synchronization-profiling layer: a
// schema-versioned, mergeable, diffable record of what every sync site
// cost at run time. PR 2 and PR 5 made individual runs richly observable
// (per-site wait quantiles, the static×runtime sync report) but all of it
// evaporated at process exit; a Profile survives — written by
// `spmdrun -profile-out`, appended per run to a ledger
// (`spmdrun -ledger`), rolled up across runs with Merge, and compared
// across builds or configurations with Diff — so feedback-directed
// re-optimization (`-profile-in`, ROADMAP item 1) and the `barrierd`
// dashboards (item 4) have measured per-site cost history to consume.
//
// Site ids are the global 1-based sync-site numbering shared with the
// optimization remarks, the watchdog's deadlock reports,
// spmdrt.StatsSnapshot.PerSite, exec.Config.SabotageEdge and
// certify.DropSite — the invariant suite.TestSiteNumberingAgreement pins.
// Sites are kept sorted by id so serialization is byte-stable.
//
// The package is a leaf on the analysis/runtime seam: it imports only
// internal/envelope (serialization) and internal/remarks (the ledger
// carries the compile's cost bill), never the executor or the optimizer.
package profile

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"
)

// Schema is the profile payload schema emitted by this build. Readers
// reject payloads whose schema is newer; older schemas are accepted as
// long as the fields decode (there are none yet).
const Schema = 1

// SiteProfile is the durable per-site record: the site's scheduled
// primitive, its dynamic operation count, the mergeable wait-time sketch,
// and barrier-imbalance / straggler attribution.
type SiteProfile struct {
	// Site is the 1-based global sync-site id.
	Site int `json:"site"`
	// Kind is the scheduled primitive ("barrier", "counter", "neighbor"),
	// matching remarks.Remark.Primitive at the same site.
	Kind string `json:"kind"`
	// Ops is the dynamic sync-operation count at the site (barrier
	// episodes + counter incrs/waits + neighbor waits), summed across the
	// aggregated runs.
	Ops int64 `json:"ops"`
	// Wait is the sketch of every blocking wait recorded at the site.
	Wait Sketch `json:"wait"`
	// Barrier-imbalance attribution (barrier sites only): per-episode
	// arrival slack and which worker most often arrived last. SlackSumNS
	// rather than a mean so cross-run merging stays exact.
	Episodes     int64   `json:"episodes,omitempty"`
	SlackSumNS   int64   `json:"slack_sum_ns,omitempty"`
	MaxSlackNS   int64   `json:"max_slack_ns,omitempty"`
	LastByWorker []int64 `json:"last_by_worker,omitempty"`
	// Inspector-site runtime behavior (inspector sites only): index-array
	// scans executed, crossings certified conflict-free (all waits
	// skipped), crossings that synthesized point-to-point waits, and
	// conservative all-pairs fallbacks. Additive across merged runs.
	Scans          int64 `json:"scans,omitempty"`
	EmptyCrossings int64 `json:"empty_crossings,omitempty"`
	WaitCrossings  int64 `json:"wait_crossings,omitempty"`
	Conservative   int64 `json:"conservative,omitempty"`
}

// MeanSlack is the mean barrier-arrival slack per episode.
func (s *SiteProfile) MeanSlack() time.Duration {
	if s.Episodes == 0 {
		return 0
	}
	return time.Duration(s.SlackSumNS / s.Episodes)
}

// Straggler returns the worker most often last to arrive and its share of
// episodes; ok is false when no imbalance was attributed.
func (s *SiteProfile) Straggler() (worker int, share float64, ok bool) {
	if s.Episodes == 0 || len(s.LastByWorker) == 0 {
		return 0, 0, false
	}
	for w, c := range s.LastByWorker {
		if c > s.LastByWorker[worker] {
			worker = w
		}
	}
	return worker, float64(s.LastByWorker[worker]) / float64(s.Episodes), true
}

// Profile is one durable sync profile: the identity of what ran (program
// content hash, schedule hash, configuration) plus the per-site records.
// A profile may describe one run (Runs == 1) or a Merge rollup.
type Profile struct {
	Schema int `json:"profile_schema"`
	// Program is the program name; ProgramHash is the content hash of its
	// IR (core.Compiled.ProgramHash), so profiles from edited sources
	// never merge.
	Program     string `json:"program"`
	ProgramHash string `json:"program_hash"`
	// ScheduleHash identifies the exact synchronization schedule (site
	// primitives, wait directions, boundary structure); a re-optimized
	// schedule gets a new hash and its profiles form a new lineage.
	ScheduleHash string `json:"schedule_hash"`
	// Mode/Workers/Backend/Barrier pin the execution configuration.
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`
	Backend string `json:"backend"`
	Barrier string `json:"barrier,omitempty"`
	// ChaosSeed records deliberate perturbation (0 for clean runs; -1
	// after merging profiles with differing seeds).
	ChaosSeed int64 `json:"chaos_seed,omitempty"`
	// Runs is the number of runs aggregated into this profile.
	Runs int `json:"runs"`
	// SpanNS sums the traced wall-clock span of the aggregated runs.
	SpanNS int64 `json:"span_ns"`
	// Sites holds one record per scheduled sync site that retains runtime
	// synchronization, sorted by ascending site id.
	Sites []SiteProfile `json:"sites"`
}

// Site returns the record for a 1-based site id, or nil.
func (p *Profile) Site(id int) *SiteProfile {
	for i := range p.Sites {
		if p.Sites[i].Site == id {
			return &p.Sites[i]
		}
	}
	return nil
}

// TotalWait sums blocking wait time over all sites.
func (p *Profile) TotalWait() time.Duration {
	var ns int64
	for i := range p.Sites {
		ns += p.Sites[i].Wait.SumNS
	}
	return time.Duration(ns)
}

// TotalWaitSketch merges every site's wait sketch into one program-wide
// wait distribution.
func (p *Profile) TotalWaitSketch() *Sketch {
	var s Sketch
	for i := range p.Sites {
		s.Merge(&p.Sites[i].Wait)
	}
	return &s
}

// normalize sorts sites by id (the serialization order every emitter must
// use) and validates basic invariants.
func (p *Profile) normalize() error {
	sort.Slice(p.Sites, func(i, j int) bool { return p.Sites[i].Site < p.Sites[j].Site })
	for i := range p.Sites {
		if p.Sites[i].Site < 1 {
			return fmt.Errorf("profile: invalid site id %d (ids are 1-based)", p.Sites[i].Site)
		}
		if i > 0 && p.Sites[i].Site == p.Sites[i-1].Site {
			return fmt.Errorf("profile: duplicate site id %d", p.Sites[i].Site)
		}
	}
	if p.Runs < 1 {
		return fmt.Errorf("profile: runs=%d, want >= 1", p.Runs)
	}
	return nil
}

// Compatible reports whether two profiles describe the same (program,
// schedule, configuration) and may therefore be merged or diffed; the
// error names the first mismatching field.
func (p *Profile) Compatible(o *Profile) error {
	type field struct{ name, a, b string }
	for _, f := range []field{
		{"program", p.Program, o.Program},
		{"program_hash", p.ProgramHash, o.ProgramHash},
		{"schedule_hash", p.ScheduleHash, o.ScheduleHash},
		{"mode", p.Mode, o.Mode},
		{"workers", fmt.Sprint(p.Workers), fmt.Sprint(o.Workers)},
		{"backend", p.Backend, o.Backend},
	} {
		if f.a != f.b {
			if f.name == "program_hash" || f.name == "schedule_hash" {
				return fmt.Errorf("%w: %s %q vs %q", ErrHashMismatch, f.name, f.a, f.b)
			}
			return fmt.Errorf("%w: %s %q vs %q", ErrIncompatible, f.name, f.a, f.b)
		}
	}
	return nil
}

// GroupKey is the ledger-grouping identity of a profile: profiles with
// equal keys are Compatible.
func (p *Profile) GroupKey() string {
	return fmt.Sprintf("%s|%s|%s|%s|P%d|%s",
		p.Program, p.ProgramHash, p.ScheduleHash, p.Mode, p.Workers, p.Backend)
}

// Merge aggregates compatible profiles into one rollup, weighted naturally
// by each input's run count: ops, sketches, spans and imbalance vectors
// add exactly, so a merge of merges equals the merge of the underlying
// runs. Merging a single profile returns an identical copy (the byte
// round-trip identity the determinism gate relies on).
func Merge(ps ...*Profile) (*Profile, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("profile: nothing to merge")
	}
	base := ps[0]
	out := &Profile{
		Schema:      Schema,
		Program:     base.Program,
		ProgramHash: base.ProgramHash, ScheduleHash: base.ScheduleHash,
		Mode: base.Mode, Workers: base.Workers,
		Backend: base.Backend, Barrier: base.Barrier,
		ChaosSeed: base.ChaosSeed,
	}
	// Indices, not pointers: out.Sites reallocates as it grows.
	bySite := map[int]int{}
	for _, p := range ps {
		if err := base.Compatible(p); err != nil {
			return nil, err
		}
		if p.Barrier != base.Barrier {
			out.Barrier = ""
		}
		if p.ChaosSeed != base.ChaosSeed {
			out.ChaosSeed = -1 // mixed perturbation lineage, keep it visible
		}
		out.Runs += p.Runs
		out.SpanNS += p.SpanNS
		for i := range p.Sites {
			sp := &p.Sites[i]
			idx, ok := bySite[sp.Site]
			if !ok {
				idx = len(out.Sites)
				out.Sites = append(out.Sites, SiteProfile{Site: sp.Site, Kind: sp.Kind})
				bySite[sp.Site] = idx
			}
			dst := &out.Sites[idx]
			if dst.Kind != sp.Kind {
				return nil, fmt.Errorf("profile: site %d is %q in one input, %q in another",
					sp.Site, dst.Kind, sp.Kind)
			}
			dst.Ops += sp.Ops
			dst.Wait.Merge(&sp.Wait)
			dst.Episodes += sp.Episodes
			dst.SlackSumNS += sp.SlackSumNS
			if sp.MaxSlackNS > dst.MaxSlackNS {
				dst.MaxSlackNS = sp.MaxSlackNS
			}
			for len(dst.LastByWorker) < len(sp.LastByWorker) {
				dst.LastByWorker = append(dst.LastByWorker, 0)
			}
			for w, c := range sp.LastByWorker {
				dst.LastByWorker[w] += c
			}
			dst.Scans += sp.Scans
			dst.EmptyCrossings += sp.EmptyCrossings
			dst.WaitCrossings += sp.WaitCrossings
			dst.Conservative += sp.Conservative
		}
	}
	if err := out.normalize(); err != nil {
		return nil, err
	}
	return out, nil
}

// HashBytes is the canonical content hash used for ProgramHash and
// ScheduleHash: hex-encoded truncated SHA-256 over a deterministic
// rendering of the hashed artifact.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:12])
}
