package profile

import (
	"encoding/json"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestBucketRoundTrip pins the bucket geometry: every boundary value maps
// into a bucket whose [lo, hi] range contains it, and the ranges tile the
// axis without gaps or overlap.
func TestBucketRoundTrip(t *testing.T) {
	for b := 0; b < sketchBuckets; b++ {
		lo, hi := bucketLo(b), bucketHi(b)
		if lo > hi {
			t.Fatalf("bucket %d: lo %d > hi %d", b, lo, hi)
		}
		if bucketOf(lo) != b {
			t.Fatalf("bucketOf(lo=%d) = %d, want %d", lo, bucketOf(lo), b)
		}
		if b < sketchBuckets-1 {
			if bucketOf(hi) != b {
				t.Fatalf("bucketOf(hi=%d) = %d, want %d", hi, bucketOf(hi), b)
			}
			if bucketLo(b+1) != hi+1 {
				t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", b, hi, b+1, bucketLo(b+1))
			}
		}
	}
	// Relative bucket width stays within 2^-subBits above the linear range.
	for b := 1 << (subBits + 1); b < sketchBuckets-1; b++ {
		lo, hi := bucketLo(b), bucketHi(b)
		if width, bound := float64(hi-lo+1), float64(lo)/float64(int64(1)<<subBits); width > bound+1 {
			t.Fatalf("bucket %d [%d,%d]: width %.0f exceeds relative bound %.0f", b, lo, hi, width, bound)
		}
	}
}

// exactQuantile is the nearest-rank sample quantile (the tracer's
// convention) over a sorted sample slice.
func exactQuantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)-1) + 0.5)
	return sorted[rank]
}

// TestSketchMergeQuantileProperty is the satellite property test: for
// random sample sets split across several sketches, the merged sketch's
// quantiles must stay within the sketch's rank/value-error bound of the
// exact quantiles recomputed over the concatenated samples — the merge
// itself must add no error beyond single-sketch bucketing.
func TestSketchMergeQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		nSketches := 1 + rng.Intn(6)
		var all []int64
		var merged Sketch
		for i := 0; i < nSketches; i++ {
			var s Sketch
			n := 1 + rng.Intn(400)
			for j := 0; j < n; j++ {
				// Mix scales: sub-µs spin waits up to multi-ms stalls.
				var ns int64
				switch rng.Intn(3) {
				case 0:
					ns = rng.Int63n(2_000) // 0–2µs
				case 1:
					ns = rng.Int63n(200_000) // 0–200µs
				default:
					ns = rng.Int63n(20_000_000) // 0–20ms
				}
				s.Add(time.Duration(ns))
				all = append(all, ns)
			}
			merged.Merge(&s)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		if merged.Count != int64(len(all)) {
			t.Fatalf("trial %d: merged count %d, want %d", trial, merged.Count, len(all))
		}
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			exact := exactQuantile(all, q)
			got := int64(merged.Quantile(q))
			// The exact ranked sample and the estimate must share a bucket
			// (or adjacent buckets, for rank rounding at bucket edges)...
			be, bg := bucketOf(exact), bucketOf(got)
			if d := be - bg; d < -1 || d > 1 {
				t.Fatalf("trial %d q=%.2f: estimate %d (bucket %d) vs exact %d (bucket %d): rank error > 1 bucket",
					trial, q, got, bg, exact, be)
			}
			// ...which bounds the value error by two bucket widths:
			// |got - exact| <= 2 * 2^-subBits * max(exact, floor) + 2.
			bound := int64(2) * (exact>>subBits + 2)
			if bound < 4 {
				bound = 4
			}
			diff := got - exact
			if diff < 0 {
				diff = -diff
			}
			if diff > bound {
				t.Fatalf("trial %d q=%.2f: |%d - %d| = %d exceeds bound %d",
					trial, q, got, exact, diff, bound)
			}
		}
	}
}

// TestSketchMergeEqualsConcatenation: building one sketch from all samples
// and merging per-chunk sketches must yield bit-identical state.
func TestSketchMergeEqualsConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var whole, merged Sketch
	for c := 0; c < 5; c++ {
		var part Sketch
		for j := 0; j < 300; j++ {
			ns := rng.Int63n(5_000_000)
			whole.Add(time.Duration(ns))
			part.Add(time.Duration(ns))
		}
		merged.Merge(&part)
	}
	wb, err := json.Marshal(whole)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	if string(wb) != string(mb) {
		t.Fatalf("merged sketch differs from whole-sample sketch:\nwhole:  %s\nmerged: %s", wb, mb)
	}
}

// TestSketchJSONRoundTrip: serialize → parse → serialize must be a fixed
// point, and the parsed sketch must answer quantiles identically.
func TestSketchJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var s Sketch
	for i := 0; i < 1000; i++ {
		s.Add(time.Duration(rng.Int63n(10_000_000)))
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Sketch
	if err := json.Unmarshal(b1, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Fatalf("round trip not byte-stable:\n%s\n%s", b1, b2)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if s.Quantile(q) != back.Quantile(q) {
			t.Fatalf("q=%.2f differs after round trip: %v vs %v", q, s.Quantile(q), back.Quantile(q))
		}
	}
}

// TestSketchRejectsCorruptPayloads: the validating decoder must refuse
// out-of-range buckets, negative counts and totals that disagree with the
// header.
func TestSketchRejectsCorruptPayloads(t *testing.T) {
	for _, bad := range []string{
		`{"count":1,"sum_ns":5,"buckets":[[99999,1]]}`,
		`{"count":1,"sum_ns":5,"buckets":[[-1,1]]}`,
		`{"count":1,"sum_ns":5,"buckets":[[3,-1]]}`,
		`{"count":2,"sum_ns":5,"buckets":[[3,1]]}`,
	} {
		var s Sketch
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("decoded corrupt sketch without error: %s", bad)
		}
	}
}

// TestSketchEmptyAndEdges covers the empty sketch and extreme values.
func TestSketchEmptyAndEdges(t *testing.T) {
	var s Sketch
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	if got := s.Mean(); got != 0 {
		t.Fatalf("empty mean = %v, want 0", got)
	}
	s.Add(-5 * time.Second) // clamped to 0
	s.Add(0)
	s.Add(time.Duration(int64(1)<<62 - 1))
	if s.Count != 3 || s.MinNS != 0 {
		t.Fatalf("count=%d min=%d after edge adds", s.Count, s.MinNS)
	}
	if q := s.Quantile(1); int64(q) != s.MaxNS {
		t.Fatalf("q=1 gives %v, want max %d", q, s.MaxNS)
	}
}
