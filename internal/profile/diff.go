package profile

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// DiffOptions are the noise thresholds of a cross-run comparison. A
// per-site wait shift only counts as a regression (or improvement) when it
// clears BOTH the relative and the absolute bar, and only at sites with
// enough recorded waits per run to be statistically meaningful — scheduler
// jitter on a time-sliced host trivially moves a 3-sample p99 by 2x.
type DiffOptions struct {
	// MinRelative is the minimum relative p99 shift (default 0.5 = ±50%).
	MinRelative float64
	// MinAbsolute is the minimum absolute p99 shift (default 25µs).
	MinAbsolute time.Duration
	// MinWaits is the minimum per-run recorded waits on the noisier side
	// for a site to be judged at all (default 4).
	MinWaits int64
}

// withDefaults fills unset thresholds.
func (o DiffOptions) withDefaults() DiffOptions {
	if o.MinRelative <= 0 {
		o.MinRelative = 0.5
	}
	if o.MinAbsolute <= 0 {
		o.MinAbsolute = 25 * time.Microsecond
	}
	if o.MinWaits <= 0 {
		o.MinWaits = 4
	}
	return o
}

// Verdict classifies one site's shift.
type Verdict string

const (
	// VerdictRegression: new p99 wait is above the old beyond thresholds.
	VerdictRegression Verdict = "regression"
	// VerdictImprovement: new p99 wait is below the old beyond thresholds.
	VerdictImprovement Verdict = "improvement"
	// VerdictNoise: the shift is inside the thresholds.
	VerdictNoise Verdict = ""
)

// DiffRow compares one site across the two profiles. Quantiles are
// per-run properties (scale-free); Waits is normalized per run so rollups
// of different sizes compare.
type DiffRow struct {
	Site int    `json:"site"`
	Kind string `json:"kind"`
	// OldP50/OldP99 and NewP50/NewP99 are the sketch quantiles.
	OldP50 time.Duration `json:"old_p50_ns"`
	NewP50 time.Duration `json:"new_p50_ns"`
	OldP99 time.Duration `json:"old_p99_ns"`
	NewP99 time.Duration `json:"new_p99_ns"`
	// OldWaits/NewWaits are recorded waits per run.
	OldWaits int64 `json:"old_waits_per_run"`
	NewWaits int64 `json:"new_waits_per_run"`
	// DeltaP99 = NewP99 - OldP99; RelP99 is DeltaP99 / OldP99 (using the
	// noise floor when OldP99 is zero, so a site that went from silent to
	// expensive still registers).
	DeltaP99 time.Duration `json:"delta_p99_ns"`
	RelP99   float64       `json:"rel_p99"`
	Verdict  Verdict       `json:"verdict,omitempty"`
}

// DiffReport is the ranked regression/improvement table of old vs new.
type DiffReport struct {
	Program string `json:"program"`
	Workers int    `json:"workers"`
	// OldRuns/NewRuns are the run counts behind each side.
	OldRuns int `json:"old_runs"`
	NewRuns int `json:"new_runs"`
	// Thresholds echoes the noise bars the verdicts used.
	Thresholds DiffOptions `json:"thresholds"`
	// Rows holds every judged site, ranked by |DeltaP99| descending
	// (regressions and improvements float to the top).
	Rows []DiffRow `json:"rows"`
	// Regressions/Improvements count the non-noise verdicts.
	Regressions  int `json:"regressions"`
	Improvements int `json:"improvements"`
}

// TopRegression returns the largest regression row, or nil.
func (r *DiffReport) TopRegression() *DiffRow {
	for i := range r.Rows {
		if r.Rows[i].Verdict == VerdictRegression {
			return &r.Rows[i]
		}
	}
	return nil
}

// Diff compares two compatible profiles site by site and ranks the
// shifts. old is the baseline (typically a many-run Merge rollup), cand
// the candidate.
func Diff(old, cand *Profile, opts DiffOptions) (*DiffReport, error) {
	if err := old.Compatible(cand); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	rep := &DiffReport{Program: old.Program, Workers: old.Workers,
		OldRuns: old.Runs, NewRuns: cand.Runs, Thresholds: opts}

	ids := map[int]bool{}
	for i := range old.Sites {
		ids[old.Sites[i].Site] = true
	}
	for i := range cand.Sites {
		ids[cand.Sites[i].Site] = true
	}
	sorted := make([]int, 0, len(ids))
	for id := range ids {
		sorted = append(sorted, id)
	}
	sort.Ints(sorted)

	for _, id := range sorted {
		o, n := old.Site(id), cand.Site(id)
		row := DiffRow{Site: id}
		if o != nil {
			row.Kind = o.Kind
			row.OldP50, row.OldP99 = o.Wait.Quantile(0.50), o.Wait.Quantile(0.99)
			row.OldWaits = o.Wait.Count / int64(old.Runs)
		}
		if n != nil {
			row.Kind = n.Kind
			row.NewP50, row.NewP99 = n.Wait.Quantile(0.50), n.Wait.Quantile(0.99)
			row.NewWaits = n.Wait.Count / int64(cand.Runs)
		}
		row.DeltaP99 = row.NewP99 - row.OldP99
		base := row.OldP99
		if base < opts.MinAbsolute {
			// A near-silent baseline would make any shift infinite-relative;
			// judge against the noise floor instead.
			base = opts.MinAbsolute
		}
		row.RelP99 = float64(row.DeltaP99) / float64(base)

		waits := row.NewWaits
		if row.DeltaP99 < 0 {
			waits = row.OldWaits // an improvement is judged on what vanished
		}
		abs := row.DeltaP99
		if abs < 0 {
			abs = -abs
		}
		if waits >= opts.MinWaits && abs >= opts.MinAbsolute {
			switch {
			case row.RelP99 >= opts.MinRelative:
				row.Verdict = VerdictRegression
				rep.Regressions++
			case row.RelP99 <= -opts.MinRelative:
				row.Verdict = VerdictImprovement
				rep.Improvements++
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.SliceStable(rep.Rows, func(i, j int) bool {
		a, b := rep.Rows[i], rep.Rows[j]
		av, bv := a.Verdict != VerdictNoise, b.Verdict != VerdictNoise
		if av != bv {
			return av
		}
		ad, bd := a.DeltaP99, b.DeltaP99
		if ad < 0 {
			ad = -ad
		}
		if bd < 0 {
			bd = -bd
		}
		if ad != bd {
			return ad > bd
		}
		return a.Site < b.Site
	})
	return rep, nil
}

// Render prints the ranked table `spmdprof diff` emits.
func (r *DiffReport) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "profile diff: %s  P=%d  old=%d run(s) new=%d run(s)  regressions=%d improvements=%d\n",
		r.Program, r.Workers, r.OldRuns, r.NewRuns, r.Regressions, r.Improvements)
	fmt.Fprintf(&sb, "(thresholds: |Δp99| ≥ %s and ≥ %.0f%%, ≥ %d waits/run)\n",
		r.Thresholds.MinAbsolute, r.Thresholds.MinRelative*100, r.Thresholds.MinWaits)
	if len(r.Rows) == 0 {
		sb.WriteString("no sites to compare\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%-5s %-9s %12s %12s %12s %12s %9s %8s  %s\n",
		"site", "kind", "old_p50", "new_p50", "old_p99", "new_p99", "Δp99", "rel", "verdict")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%-5d %-9s %12s %12s %12s %12s %9s %+7.0f%%  %s\n",
			row.Site, row.Kind, rdur(row.OldP50), rdur(row.NewP50),
			rdur(row.OldP99), rdur(row.NewP99), rdur(row.DeltaP99), row.RelP99*100,
			row.Verdict)
	}
	return sb.String()
}

// rdur rounds a duration for table display.
func rdur(d time.Duration) time.Duration {
	neg := d < 0
	if neg {
		d = -d
	}
	switch {
	case d >= time.Second:
		d = d.Round(time.Millisecond)
	case d >= time.Millisecond:
		d = d.Round(10 * time.Microsecond)
	default:
		d = d.Round(100 * time.Nanosecond)
	}
	if neg {
		return -d
	}
	return d
}
