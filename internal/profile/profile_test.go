package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/remarks"
)

// sample builds a one-run profile with two sites for the unit tests.
func sample(seed int64) *Profile {
	p := &Profile{
		Schema: Schema, Program: "jacobi2d",
		ProgramHash: "aaaaaaaaaaaaaaaaaaaaaaaa", ScheduleHash: "bbbbbbbbbbbbbbbbbbbbbbbb",
		Mode: "opt", Workers: 4, Backend: "chan", Barrier: "tree",
		ChaosSeed: seed, Runs: 1, SpanNS: 1_000_000,
	}
	s1 := SiteProfile{Site: 1, Kind: "barrier", Ops: 40, Episodes: 10,
		SlackSumNS: 500_000, MaxSlackNS: 90_000, LastByWorker: []int64{1, 2, 3, 4}}
	for i := 0; i < 40; i++ {
		s1.Wait.Add(time.Duration(10_000 + i*1_000))
	}
	s2 := SiteProfile{Site: 3, Kind: "counter", Ops: 16}
	for i := 0; i < 16; i++ {
		s2.Wait.Add(time.Duration(2_000 + i*500))
	}
	p.Sites = []SiteProfile{s1, s2}
	return p
}

// TestProfileGoldenByteStability is the satellite golden test: the
// serialized envelope of a fixed profile must match a pinned golden byte
// string exactly, and decode → encode must reproduce it byte for byte.
func TestProfileGoldenByteStability(t *testing.T) {
	p := &Profile{
		Schema: Schema, Program: "demo",
		ProgramHash: "0123456789abcdef01234567", ScheduleHash: "fedcba9876543210fedcba98",
		Mode: "opt", Workers: 2, Backend: "chan", Runs: 1, SpanNS: 1000,
	}
	var sp SiteProfile
	sp.Site, sp.Kind, sp.Ops = 1, "barrier", 2
	sp.Wait.Add(3)
	sp.Wait.Add(100)
	p.Sites = []SiteProfile{sp}

	b, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "schema_version": 1,
  "tool": "spmd-profile",
  "payload": {
    "profile_schema": 1,
    "program": "demo",
    "program_hash": "0123456789abcdef01234567",
    "schedule_hash": "fedcba9876543210fedcba98",
    "mode": "opt",
    "workers": 2,
    "backend": "chan",
    "runs": 1,
    "span_ns": 1000,
    "sites": [
      {
        "site": 1,
        "kind": "barrier",
        "ops": 2,
        "wait": {
          "count": 2,
          "sum_ns": 103,
          "min_ns": 3,
          "max_ns": 100,
          "buckets": [
            [
              3,
              1
            ],
            [
              36,
              1
            ]
          ]
        }
      }
    ]
  }
}
`
	if string(b) != golden {
		t.Fatalf("golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", b, golden)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("decode→encode not a fixed point:\n%s\nvs\n%s", b, b2)
	}
}

// TestEncodeSortsSites: emitters may build Sites in any order; Encode must
// canonicalize to ascending site id (the byte-stability satellite).
func TestEncodeSortsSites(t *testing.T) {
	p := sample(0)
	p.Sites[0], p.Sites[1] = p.Sites[1], p.Sites[0] // scramble
	b, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if back.Sites[0].Site != 1 || back.Sites[1].Site != 3 {
		t.Fatalf("sites not sorted: %d, %d", back.Sites[0].Site, back.Sites[1].Site)
	}
}

// TestMergeSingleIsIdentity: merging one profile must reproduce its exact
// bytes — the fixed point the check.sh determinism gate asserts through
// `spmdprof merge`.
func TestMergeSingleIsIdentity(t *testing.T) {
	p := sample(0)
	b1, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(p)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("merge of one profile is not an identity:\n%s\nvs\n%s", b1, b2)
	}
}

// TestMergeAggregates: counts, spans, imbalance vectors and run totals add;
// mixed chaos seeds surface as -1.
func TestMergeAggregates(t *testing.T) {
	a, b := sample(0), sample(42)
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 2 || m.SpanNS != 2_000_000 {
		t.Fatalf("runs=%d span=%d, want 2 / 2000000", m.Runs, m.SpanNS)
	}
	if m.ChaosSeed != -1 {
		t.Fatalf("mixed seeds gave ChaosSeed=%d, want -1", m.ChaosSeed)
	}
	s1 := m.Site(1)
	if s1 == nil || s1.Ops != 80 || s1.Wait.Count != 80 || s1.Episodes != 20 {
		t.Fatalf("site 1 not aggregated: %+v", s1)
	}
	if s1.LastByWorker[3] != 8 {
		t.Fatalf("LastByWorker not summed: %v", s1.LastByWorker)
	}
	w, share, ok := s1.Straggler()
	if !ok || w != 3 || share != 0.4 {
		t.Fatalf("straggler = %d/%.2f/%v, want 3/0.40/true", w, share, ok)
	}
	if got := s1.MeanSlack(); got != 50*time.Microsecond {
		t.Fatalf("mean slack %v, want 50µs", got)
	}
}

// TestMergeRejectsIncompatible: any identity-field mismatch refuses, and
// the error names the field.
func TestMergeRejectsIncompatible(t *testing.T) {
	a := sample(0)
	b := sample(0)
	b.ProgramHash = "cccccccccccccccccccccccc"
	if _, err := Merge(a, b); err == nil || !strings.Contains(err.Error(), "program_hash") {
		t.Fatalf("want program_hash mismatch error, got %v", err)
	}
	c := sample(0)
	c.Sites[0].Kind = "counter"
	if _, err := Merge(a, c); err == nil || !strings.Contains(err.Error(), "site 1") {
		t.Fatalf("want site-kind mismatch error, got %v", err)
	}
}

// TestDiffFlagsRegression: a site whose p99 wait grows well past both
// noise bars must be ranked first and flagged; an untouched site stays
// noise.
func TestDiffFlagsRegression(t *testing.T) {
	old := sample(0)
	cand := sample(0)
	// Inflate site 3's waits in the candidate by ~100x.
	s := cand.Site(3)
	s.Wait = Sketch{}
	for i := 0; i < 16; i++ {
		s.Wait.Add(time.Duration(2_000_000 + i*100_000))
	}
	rep, err := Diff(old, cand, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 1 || rep.Improvements != 0 {
		t.Fatalf("regressions=%d improvements=%d, want 1/0\n%s", rep.Regressions, rep.Improvements, rep.Render())
	}
	top := rep.TopRegression()
	if top == nil || top.Site != 3 {
		t.Fatalf("top regression %+v, want site 3", top)
	}
	if rep.Rows[0].Site != 3 {
		t.Fatalf("regression not ranked first: %+v", rep.Rows[0])
	}
	// The mirror image is an improvement.
	rep2, err := Diff(cand, old, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Improvements != 1 || rep2.Regressions != 0 {
		t.Fatalf("reverse diff: regressions=%d improvements=%d, want 0/1", rep2.Regressions, rep2.Improvements)
	}
}

// TestDiffQuietOnNoise: shifts inside the thresholds produce no verdicts
// (the "stays quiet on two clean runs" acceptance leg, in miniature).
func TestDiffQuietOnNoise(t *testing.T) {
	old := sample(0)
	cand := sample(0)
	s := cand.Site(1)
	s.Wait = Sketch{}
	for i := 0; i < 40; i++ {
		s.Wait.Add(time.Duration(11_000 + i*1_100)) // ~10% shift, well under bars
	}
	rep, err := Diff(old, cand, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions != 0 || rep.Improvements != 0 {
		t.Fatalf("clean diff produced verdicts:\n%s", rep.Render())
	}
}

// TestDiffMinWaits: a huge shift on a 1-sample site is still noise.
func TestDiffMinWaits(t *testing.T) {
	old := sample(0)
	cand := sample(0)
	old.Sites = append(old.Sites, SiteProfile{Site: 7, Kind: "neighbor", Ops: 1})
	sp := SiteProfile{Site: 7, Kind: "neighbor", Ops: 1}
	sp.Wait.Add(50 * time.Millisecond)
	cand.Sites = append(cand.Sites, sp)
	rep, err := Diff(old, cand, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if row.Site == 7 && row.Verdict != VerdictNoise {
			t.Fatalf("1-wait site judged %q, want noise", row.Verdict)
		}
	}
}

// TestLedgerRoundTrip: append N records, read them back, and merge the
// profiles of one group.
func TestLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	for i := 0; i < 3; i++ {
		rec := &LedgerRecord{
			TimeUnixNS: int64(1000 + i),
			Result:     RunMeta{Verdict: "PASS", WallNS: 5_000_000, Checksum: "deadbeef", Attempts: 1},
			Costs:      &remarks.Costs{Total: time.Millisecond, FMSystems: 7},
			Profile:    sample(0),
		}
		if err := AppendLedger(path, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := ReadLedgerFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("read %d records, want 3", len(recs))
	}
	if recs[1].TimeUnixNS != 1001 || recs[1].Result.Verdict != "PASS" || recs[1].Costs.FMSystems != 7 {
		t.Fatalf("record 1 mangled: %+v", recs[1])
	}
	ps := make([]*Profile, len(recs))
	for i, r := range recs {
		ps[i] = r.Profile
	}
	m, err := Merge(ps...)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 3 || m.Site(1).Wait.Count != 120 {
		t.Fatalf("ledger merge: runs=%d site1.count=%d", m.Runs, m.Site(1).Wait.Count)
	}
	// A torn/blank trailing line must not break the reader.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("\n")
	f.Close()
	if recs, err = ReadLedgerFile(path); err != nil || len(recs) != 3 {
		t.Fatalf("blank trailing line: %d recs, err=%v", len(recs), err)
	}
}

// TestDecodeRejectsWrongTool: a run-result envelope is not a profile.
func TestDecodeRejectsWrongTool(t *testing.T) {
	b := []byte(`{"schema_version":1,"tool":"spmdrun","payload":{"x":1}}`)
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "spmdrun") {
		t.Fatalf("want wrong-tool error, got %v", err)
	}
}

// TestDecodeRejectsFutureSchema: payloads from a newer build refuse.
func TestDecodeRejectsFutureSchema(t *testing.T) {
	p := sample(0)
	p.Schema = Schema + 1
	b, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(b); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("want schema error, got %v", err)
	}
}

// TestHashBytes pins the truncated-sha256 format.
func TestHashBytes(t *testing.T) {
	h := HashBytes([]byte("hello"))
	if len(h) != 24 {
		t.Fatalf("hash %q has length %d, want 24", h, len(h))
	}
	if h != HashBytes([]byte("hello")) || h == HashBytes([]byte("world")) {
		t.Fatal("hash not deterministic or not discriminating")
	}
}
