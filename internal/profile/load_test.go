package profile

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleProfile() *Profile {
	return &Profile{
		Schema: Schema, Program: "jacobi1d",
		ProgramHash: "p:aaaa", ScheduleHash: "s:bbbb",
		Mode: "spmd", Workers: 4, Backend: "goroutine", Barrier: "central",
		ChaosSeed: 0, Runs: 1, SpanNS: 1000,
		Sites: []SiteProfile{{Site: 1, Kind: "barrier", Ops: 4}},
	}
}

func writeSample(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.json")
	if err := WriteFile(path, sampleProfile()); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	return path
}

func TestLoadRoundTrip(t *testing.T) {
	p, err := Load(writeSample(t))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p.Program != "jacobi1d" || p.Workers != 4 || len(p.Sites) != 1 {
		t.Fatalf("Load round-trip mangled profile: %+v", p)
	}
}

func TestLoadErrEnvelope(t *testing.T) {
	dir := t.TempDir()
	for name, body := range map[string]string{
		"garbage.json":    "not json at all",
		"wrong_tool.json": `{"schema_version":1,"tool":"spmdrun","payload":{}}`,
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := Load(path)
		if !errors.Is(err, ErrEnvelope) {
			t.Errorf("%s: Load error = %v, want ErrEnvelope", name, err)
		}
		if errors.Is(err, ErrSchema) {
			t.Errorf("%s: Load error wraps ErrSchema too: %v", name, err)
		}
	}
}

func TestLoadErrSchema(t *testing.T) {
	b, err := Encode(sampleProfile())
	if err != nil {
		t.Fatal(err)
	}
	// Bump the payload's profile schema past what this build reads. The
	// envelope schema_version stays valid so the failure is profile-level.
	body := strings.Replace(string(b), `"profile_schema": 1`, `"profile_schema": 999`, 1)
	if body == string(b) {
		t.Fatalf("test setup: schema field not found in encoded profile:\n%s", body)
	}
	path := filepath.Join(t.TempDir(), "future.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if !errors.Is(err, ErrSchema) {
		t.Fatalf("Load error = %v, want ErrSchema", err)
	}
	if errors.Is(err, ErrEnvelope) {
		t.Fatalf("Load error wraps ErrEnvelope too: %v", err)
	}
}

func TestMatchIdentitySentinels(t *testing.T) {
	p := sampleProfile()
	if err := p.MatchIdentity("p:aaaa", "s:bbbb"); err != nil {
		t.Fatalf("matching identity rejected: %v", err)
	}
	if err := p.MatchIdentity("p:other", "s:bbbb"); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("program-hash mismatch error = %v, want ErrHashMismatch", err)
	}
	if err := p.MatchIdentity("p:aaaa", "s:other"); !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("schedule-hash mismatch error = %v, want ErrHashMismatch", err)
	}
}

func TestCompatibleSentinels(t *testing.T) {
	a, b := sampleProfile(), sampleProfile()
	b.Workers = 8
	if err := a.Compatible(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("workers mismatch error = %v, want ErrIncompatible", err)
	}
	b = sampleProfile()
	b.ScheduleHash = "s:other"
	err := a.Compatible(b)
	if !errors.Is(err, ErrHashMismatch) {
		t.Fatalf("schedule-hash mismatch error = %v, want ErrHashMismatch", err)
	}
	if errors.Is(err, ErrIncompatible) {
		t.Fatalf("hash mismatch must be distinct from ErrIncompatible: %v", err)
	}
}

func TestLoadLedgerErrEnvelope(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	if err := os.WriteFile(path, []byte("{\"schema_version\":1,\"tool\":\"spmdrun\",\"payload\":{}}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := LoadLedger(path)
	if !errors.Is(err, ErrEnvelope) {
		t.Fatalf("LoadLedger error = %v, want ErrEnvelope", err)
	}
}

func TestLoadLedgerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ledger.jsonl")
	rec := &LedgerRecord{TimeUnixNS: 42, Result: RunMeta{WallNS: 7}, Profile: sampleProfile()}
	if err := AppendLedger(path, rec); err != nil {
		t.Fatalf("AppendLedger: %v", err)
	}
	if err := AppendLedger(path, rec); err != nil {
		t.Fatalf("AppendLedger: %v", err)
	}
	recs, err := LoadLedger(path)
	if err != nil {
		t.Fatalf("LoadLedger: %v", err)
	}
	if len(recs) != 2 || recs[0].Profile.Program != "jacobi1d" {
		t.Fatalf("LoadLedger = %d records, want 2 with profiles", len(recs))
	}
}
