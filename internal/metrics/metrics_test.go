package metrics

import (
	"bufio"
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/profile"
	"repro/internal/telemetry"
)

// parseExposition is a strict parser for the Prometheus text exposition
// format (version 0.0.4), covering the subset this package emits: # HELP
// and # TYPE comments, then samples `name{labels} value`. It returns the
// sample values keyed by `name{labels}` and fails the test on any
// malformed line, unknown family, or sample preceding its TYPE.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)
		samples  = map[string]float64{}
		typed    = map[string]string{}
		helpSeen = map[string]bool{}
	)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helpSeen[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "gauge", "counter", "summary", "histogram", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Sample: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
			labels = rest[i+1 : j]
			rest = name + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		if !nameRe.MatchString(fields[0]) {
			t.Fatalf("bad metric name in %q", line)
		}
		if typed[fields[0]] == "" {
			t.Fatalf("sample %q precedes its # TYPE", line)
		}
		if !helpSeen[fields[0]] {
			t.Fatalf("sample %q has no # HELP", line)
		}
		for _, l := range strings.Split(labels, ",") {
			if l != "" && !labelRe.MatchString(l) {
				t.Fatalf("bad label %q in %q", l, line)
			}
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := fields[0]
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

// testProfile builds a two-site profile for the exposition tests.
func testProfile() *profile.Profile {
	p := &profile.Profile{
		Schema: profile.Schema, Program: "jacobi2d",
		ProgramHash: "a", ScheduleHash: "b",
		Mode: "opt", Workers: 4, Backend: "chan", Runs: 2, SpanNS: 1000,
	}
	s1 := profile.SiteProfile{Site: 1, Kind: "barrier", Ops: 20, Episodes: 10,
		SlackSumNS: 400, MaxSlackNS: 90, LastByWorker: []int64{1, 9}}
	for i := 0; i < 20; i++ {
		s1.Wait.Add(time.Duration(1000 + i))
	}
	s2 := profile.SiteProfile{Site: 4, Kind: "counter", Ops: 8}
	for i := 0; i < 8; i++ {
		s2.Wait.Add(time.Duration(500 + i))
	}
	p.Sites = []profile.SiteProfile{s1, s2}
	return p
}

// siteKey assembles the full label set a per-site sample carries now that
// site families are grouped by kernel identity.
func siteKey(p *profile.Profile, family string, site int, kind, extra string) string {
	l := fmt.Sprintf(`group="%s",program="%s",mode="%s",p="%d",site="%d",kind="%s"`,
		groupTag(p.GroupKey()), p.Program, p.Mode, p.Workers, site, kind)
	if extra != "" {
		l += "," + extra
	}
	return family + "{" + l + "}"
}

// TestHandlerServesValidExposition is the acceptance test: the endpoint
// must serve text exposition that a strict parser accepts, carrying the
// expvar gauges, the process run counters, and the per-site aggregated
// summaries.
func TestHandlerServesValidExposition(t *testing.T) {
	expvar.Publish("metrics_test_gauge", expvar.Func(func() any {
		return map[string]any{"alpha": 3, "beta_ns": 4500}
	}))
	old := expvarGauges
	expvarGauges = append([]string{"metrics_test_gauge"}, old...)
	defer func() { expvarGauges = old }()

	p := testProfile()
	ag := telemetry.New(8)
	ag.ObserveProfile(p)

	srv := httptest.NewServer(HandlerFor(ag))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	samples := parseExposition(t, readAll(t, resp))

	gl := fmt.Sprintf(`group="%s",program="jacobi2d",mode="opt",p="4"`, groupTag(p.GroupKey()))
	for key, want := range map[string]float64{
		"spmd_metrics_test_gauge_alpha":                                  3,
		"spmd_metrics_test_gauge_beta_ns":                                4500,
		"spmd_runs_total":                                                1,
		"spmd_run_errors_total":                                          0,
		siteKey(p, "spmd_site_sync_ops", 1, "barrier", ""):               10,
		siteKey(p, "spmd_site_sync_ops", 4, "counter", ""):               4,
		siteKey(p, "spmd_site_barrier_episodes", 1, "barrier", ""):       5,
		siteKey(p, "spmd_site_barrier_slack_ns_total", 1, "barrier", ""): 200,
		"spmd_group_runs{" + gl + "}":                                    1,
		"spmd_profile_runs{" + gl + "}":                                  2,
	} {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if _, ok := samples[siteKey(p, "spmd_site_wait_ns", 1, "barrier", `quantile="0.99"`)]; !ok {
		t.Error("missing p99 wait quantile sample")
	}
	if _, ok := samples[siteKey(p, "spmd_site_barrier_episodes", 4, "counter", "")]; ok {
		t.Error("counter site must not report barrier episodes")
	}
}

// TestWritePromDeterministic: two scrapes of identical state are
// byte-identical (the no-map-order guarantee).
func TestWritePromDeterministic(t *testing.T) {
	ag := telemetry.New(8)
	ag.ObserveProfile(testProfile())
	other := testProfile()
	other.Program = "stencil9"
	ag.ObserveProfile(other)
	var a, b strings.Builder
	WritePromFor(&a, ag)
	WritePromFor(&b, ag)
	if a.String() != b.String() {
		t.Fatalf("scrapes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestWritePromEmptyAggregator: an aggregator with no observed runs still
// yields a valid (counters + expvar only) exposition.
func TestWritePromEmptyAggregator(t *testing.T) {
	var sb strings.Builder
	WritePromFor(&sb, telemetry.New(8))
	parseExposition(t, sb.String())
	if strings.Contains(sb.String(), "spmd_site_") {
		t.Fatal("site families emitted with no profile observed")
	}
}

// TestSetProfileAggregatesAcrossRuns is the regression test for the old
// last-writer-wins bug: two pooled runs handing over profiles one after
// the other must BOTH be visible in the next scrape (summed ops), not
// just the second one.
func TestSetProfileAggregatesAcrossRuns(t *testing.T) {
	ag := telemetry.New(8)
	p1, p2 := testProfile(), testProfile()
	ag.ObserveProfile(p1)
	ag.ObserveProfile(p2)
	var sb strings.Builder
	WritePromFor(&sb, ag)
	samples := parseExposition(t, sb.String())
	// 40 ops over 4 merged runs: the per-run value survives, but the
	// rollup now carries both runs (profile_runs = 4, not 2).
	gl := fmt.Sprintf(`group="%s",program="jacobi2d",mode="opt",p="4"`, groupTag(p1.GroupKey()))
	if got := samples["spmd_profile_runs{"+gl+"}"]; got != 4 {
		t.Fatalf("profile_runs = %v, want 4 (both runs aggregated)", got)
	}
	if got := samples[siteKey(p1, "spmd_site_sync_ops", 1, "barrier", "")]; got != 10 {
		t.Fatalf("per-run sync ops = %v, want 10", got)
	}
}

// TestConcurrentObserveAndScrape drives observers and scrapers in
// parallel; run under -race this proves the aggregator path has no data
// race (the old atomic-pointer SetProfile raced semantically: each writer
// silently discarded the others' runs).
func TestConcurrentObserveAndScrape(t *testing.T) {
	ag := telemetry.New(16)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				ag.ObserveProfile(testProfile())
			}
		}()
	}
	for s := 0; s < 4; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var sb strings.Builder
				WritePromFor(&sb, ag)
			}
		}()
	}
	wg.Wait()
	var sb strings.Builder
	WritePromFor(&sb, ag)
	samples := parseExposition(t, sb.String())
	if got := samples["spmd_runs_total"]; got != 100 {
		t.Fatalf("runs_total = %v, want 100 (no observation lost)", got)
	}
	p := testProfile()
	gl := fmt.Sprintf(`group="%s",program="jacobi2d",mode="opt",p="4"`, groupTag(p.GroupKey()))
	if got := samples["spmd_profile_runs{"+gl+"}"]; got != 200 {
		t.Fatalf("profile_runs = %v, want 200 (100 profiles x Runs=2)", got)
	}
}

// TestAggregatedQuantilesMatchMerge pins the acceptance contract: the
// aggregator's per-group rollup over N observed profiles is the same
// merge `spmdprof merge` computes over the N profile files, so the
// /metrics wait quantiles equal the offline-merged ones exactly.
func TestAggregatedQuantilesMatchMerge(t *testing.T) {
	ag := telemetry.New(16)
	var all []*profile.Profile
	for i := 0; i < 10; i++ {
		p := testProfile()
		// Vary the wait distribution per run so the equality is not
		// trivially about identical inputs.
		for j := 0; j <= i; j++ {
			p.Sites[0].Wait.Add(time.Duration(100 * (i + j + 1)))
		}
		all = append(all, p)
		ag.ObserveProfile(p)
	}
	want, err := profile.Merge(all...)
	if err != nil {
		t.Fatal(err)
	}
	snap := ag.Snapshot()
	var got *profile.Profile
	for i := range snap.Groups {
		if snap.Groups[i].Program == "jacobi2d" {
			got = snap.Groups[i].Profile
		}
	}
	if got == nil {
		t.Fatal("no rollup profile for jacobi2d group")
	}
	if got.Runs != want.Runs {
		t.Fatalf("rollup runs = %d, want %d", got.Runs, want.Runs)
	}
	for i := range want.Sites {
		for _, q := range []float64{0.5, 0.9, 0.99} {
			if g, w := got.Sites[i].Wait.Quantile(q), want.Sites[i].Wait.Quantile(q); g != w {
				t.Fatalf("site %d q%v: aggregator %d != merge %d",
					want.Sites[i].Site, q, g, w)
			}
		}
		if got.Sites[i].Ops != want.Sites[i].Ops {
			t.Fatalf("site %d ops: aggregator %d != merge %d",
				want.Sites[i].Site, got.Sites[i].Ops, want.Sites[i].Ops)
		}
	}
}

// TestHealthEndpoint: a healthy aggregator answers 200 with "ok"; an
// aggregator whose most recent run failed answers 503 "degraded".
func TestHealthEndpoint(t *testing.T) {
	ag := telemetry.New(8)
	ag.Observe(telemetry.RunSummary{Program: "jacobi2d", Outcome: telemetry.OutcomeOK}, nil, nil)
	srv := httptest.NewServer(DebugMux(ag))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy: status=%d %q, want 200 ok", resp.StatusCode, h.Status)
	}
	if h.Runs != 1 {
		t.Fatalf("healthz runs = %d, want 1", h.Runs)
	}

	ag.Observe(telemetry.RunSummary{Program: "jacobi2d", Outcome: telemetry.OutcomeError, Error: "boom"}, nil, nil)
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "degraded" {
		t.Fatalf("after failure: status=%d %q, want 503 degraded", resp.StatusCode, h.Status)
	}
}

// TestRunsAndSpansEndpoints: /runs returns the ring newest first and
// honors ?n=; /spans/<id> round-trips the envelope-wrapped export and
// 404s on unknown ids.
func TestRunsAndSpansEndpoints(t *testing.T) {
	ag := telemetry.New(8)
	tr := telemetry.NewTrace()
	tr.SetProgram("jacobi2d")
	sp := tr.Start(tr.Root(), "execute")
	tr.End(sp)
	tr.Finish()
	exp := tr.Export()
	ag.Observe(telemetry.RunSummary{TraceID: tr.ID(), Program: "jacobi2d", Outcome: telemetry.OutcomeOK}, nil, exp)
	ag.Observe(telemetry.RunSummary{TraceID: "ffffffffffffffff", Program: "stencil9", Outcome: telemetry.OutcomeOK}, nil, nil)

	srv := httptest.NewServer(DebugMux(ag))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/runs?n=1")
	if err != nil {
		t.Fatal(err)
	}
	var runs []telemetry.RunSummary
	if err := json.NewDecoder(resp.Body).Decode(&runs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(runs) != 1 || runs[0].Program != "stencil9" {
		t.Fatalf("/runs?n=1 = %+v, want newest run (stencil9)", runs)
	}

	resp, err = http.Get(srv.URL + "/spans/" + tr.ID())
	if err != nil {
		t.Fatal(err)
	}
	body := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/spans/%s = %d: %s", tr.ID(), resp.StatusCode, body)
	}
	if !strings.Contains(body, `"spmdrun-spans"`) || !strings.Contains(body, tr.ID()) {
		t.Fatalf("span payload missing envelope tool or trace id: %s", body)
	}

	resp, err = http.Get(srv.URL + "/spans/deadbeefdeadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id = %d, want 404", resp.StatusCode)
	}
}

// TestServerGracefulShutdown: Shutdown drains an in-flight scrape instead
// of cutting the connection (the -metrics-addr listener must not drop a
// scrape that raced the process exiting).
func TestServerGracefulShutdown(t *testing.T) {
	ag := telemetry.New(8)
	ag.ObserveProfile(testProfile())
	s, err := ServeAggregator("127.0.0.1:0", ag)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	// Begin Shutdown while the response body is still unread: the drain
	// must let this scrape finish.
	done := make(chan error, 1)
	go func() { done <- s.Shutdown(testContext(t)) }()
	body := readAll(t, resp)
	parseExposition(t, body)
	if err := <-done; err != nil {
		t.Fatalf("graceful shutdown: %v", err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Fatal("listener still accepting after Shutdown")
	}
}

func testContext(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	buf := make([]byte, 0, 1<<20)
	sc.Buffer(buf, 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return sb.String()
}
