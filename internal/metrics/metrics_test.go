package metrics

import (
	"bufio"
	"expvar"
	"fmt"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/profile"
)

// parseExposition is a strict parser for the Prometheus text exposition
// format (version 0.0.4), covering the subset this package emits: # HELP
// and # TYPE comments, then samples `name{labels} value`. It returns the
// sample values keyed by `name{labels}` and fails the test on any
// malformed line, unknown family, or sample preceding its TYPE.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	var (
		nameRe   = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
		labelRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$`)
		samples  = map[string]float64{}
		typed    = map[string]string{}
		helpSeen = map[string]bool{}
	)
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			parts := strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("malformed HELP line: %q", line)
			}
			helpSeen[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(strings.TrimPrefix(line, "# TYPE "))
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			switch parts[1] {
			case "gauge", "counter", "summary", "histogram", "untyped":
			default:
				t.Fatalf("unknown metric type in %q", line)
			}
			typed[parts[0]] = parts[1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		// Sample: name[{labels}] value
		rest := line
		name := rest
		labels := ""
		if i := strings.IndexByte(rest, '{'); i >= 0 {
			name = rest[:i]
			j := strings.IndexByte(rest, '}')
			if j < i {
				t.Fatalf("unbalanced braces: %q", line)
			}
			labels = rest[i+1 : j]
			rest = name + rest[j+1:]
		}
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			t.Fatalf("malformed sample line: %q", line)
		}
		if !nameRe.MatchString(fields[0]) {
			t.Fatalf("bad metric name in %q", line)
		}
		if typed[fields[0]] == "" {
			t.Fatalf("sample %q precedes its # TYPE", line)
		}
		if !helpSeen[fields[0]] {
			t.Fatalf("sample %q has no # HELP", line)
		}
		for _, l := range strings.Split(labels, ",") {
			if l != "" && !labelRe.MatchString(l) {
				t.Fatalf("bad label %q in %q", l, line)
			}
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		key := fields[0]
		if labels != "" {
			key += "{" + labels + "}"
		}
		if _, dup := samples[key]; dup {
			t.Fatalf("duplicate sample %q", key)
		}
		samples[key] = v
	}
	return samples
}

// testProfile builds a two-site profile for the exposition tests.
func testProfile() *profile.Profile {
	p := &profile.Profile{
		Schema: profile.Schema, Program: "jacobi2d",
		ProgramHash: "a", ScheduleHash: "b",
		Mode: "opt", Workers: 4, Backend: "chan", Runs: 2, SpanNS: 1000,
	}
	s1 := profile.SiteProfile{Site: 1, Kind: "barrier", Ops: 20, Episodes: 10,
		SlackSumNS: 400, MaxSlackNS: 90, LastByWorker: []int64{1, 9}}
	for i := 0; i < 20; i++ {
		s1.Wait.Add(time.Duration(1000 + i))
	}
	s2 := profile.SiteProfile{Site: 4, Kind: "counter", Ops: 8}
	for i := 0; i < 8; i++ {
		s2.Wait.Add(time.Duration(500 + i))
	}
	p.Sites = []profile.SiteProfile{s1, s2}
	return p
}

// TestHandlerServesValidExposition is the acceptance test: the endpoint
// must serve text exposition that a strict parser accepts, carrying both
// the expvar gauges and the per-site profile summaries.
func TestHandlerServesValidExposition(t *testing.T) {
	expvar.Publish("metrics_test_gauge", expvar.Func(func() any {
		return map[string]any{"alpha": 3, "beta_ns": 4500}
	}))
	old := expvarGauges
	expvarGauges = append([]string{"metrics_test_gauge"}, old...)
	defer func() { expvarGauges = old }()

	SetProfile(testProfile())
	defer SetProfile(nil)

	srv := httptest.NewServer(Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type %q lacks exposition version", ct)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	samples := parseExposition(t, sb.String())

	for key, want := range map[string]float64{
		"spmd_metrics_test_gauge_alpha":                             3,
		"spmd_metrics_test_gauge_beta_ns":                           4500,
		`spmd_site_sync_ops{site="1",kind="barrier"}`:               10,
		`spmd_site_sync_ops{site="4",kind="counter"}`:               4,
		`spmd_site_barrier_episodes{site="1",kind="barrier"}`:       5,
		`spmd_site_barrier_slack_ns_total{site="1",kind="barrier"}`: 200,
		"spmd_profile_runs":                                         2,
	} {
		if got, ok := samples[key]; !ok || got != want {
			t.Errorf("%s = %v (present=%v), want %v", key, got, ok, want)
		}
	}
	if _, ok := samples[`spmd_site_wait_ns{site="1",kind="barrier",quantile="0.99"}`]; !ok {
		t.Error("missing p99 wait quantile sample")
	}
	if _, ok := samples[`spmd_site_barrier_episodes{site="4",kind="counter"}`]; ok {
		t.Error("counter site must not report barrier episodes")
	}
}

// TestWritePromDeterministic: two scrapes of identical state are
// byte-identical (the no-map-order guarantee).
func TestWritePromDeterministic(t *testing.T) {
	SetProfile(testProfile())
	defer SetProfile(nil)
	var a, b strings.Builder
	WriteProm(&a)
	WriteProm(&b)
	if a.String() != b.String() {
		t.Fatalf("scrapes differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestWritePromEmptyProfile: no installed profile still yields a valid
// (possibly expvar-only) exposition.
func TestWritePromEmptyProfile(t *testing.T) {
	SetProfile(nil)
	var sb strings.Builder
	WriteProm(&sb)
	parseExposition(t, sb.String())
	if strings.Contains(sb.String(), "spmd_site_") {
		t.Fatal("site families emitted with no profile installed")
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
