// Package metrics renders the process's observability surfaces and hosts
// the debug server behind `spmdrun -metrics-addr` (and, per ROADMAP item
// 4, the future `barrierd` scrape endpoint):
//
//   - /metrics — Prometheus text exposition (version 0.0.4): the expvar
//     gauges the runtime publishes ("team_pool", "barrier_analysis"),
//     process-wide run counters, and per-kernel-group per-site summaries
//     aggregated across every observed run (telemetry.Aggregator rollups,
//     not a last-run gauge).
//   - /healthz — pool + watchdog health as JSON (200 ok / 503 degraded).
//   - /runs — the ring buffer of recent run summaries with trace ids.
//   - /spans/<trace-id> — one run's span export (envelope-wrapped).
//   - /debug/vars — expvar's standard handler.
//
// Output is deterministic for fixed state: metric families sorted by
// name, groups by key, label sets by site id, so two scrapes of identical
// state are byte-identical.
package metrics

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/envelope"
	"repro/internal/profile"
	"repro/internal/spmdrt"
	"repro/internal/telemetry"
)

// namePrefix is prepended to every exported metric family.
const namePrefix = "spmd_"

// SetProfile folds one run's profile into the process-wide aggregator.
//
// Deprecated: this is the compatibility shim for the pre-aggregator API,
// whose single atomic "latest profile" slot made concurrent pooled runs
// clobber each other's per-site gauges (last writer won the next scrape).
// New callers should build a telemetry.RunSummary and call
// telemetry.Default().Observe directly. A nil profile is a no-op.
func SetProfile(p *profile.Profile) { telemetry.Default().ObserveProfile(p) }

// expvarGauges are the process-wide expvar surfaces exported as gauge
// families: each numeric field of the published value becomes
// spmd_<var>_<field>.
var expvarGauges = []string{"team_pool", "barrier_analysis"}

// flatten extracts the numeric leaves of an expvar value (rendered as
// JSON by expvar's contract) into name→value pairs.
func flatten(jsonText string) map[string]float64 {
	var raw map[string]json.Number
	if err := json.Unmarshal([]byte(jsonText), &raw); err != nil {
		return nil
	}
	out := make(map[string]float64, len(raw))
	for k, n := range raw {
		if v, err := n.Float64(); err == nil {
			out[k] = v
		}
	}
	return out
}

// writeFamily emits one metric family header plus its samples.
func writeFamily(w io.Writer, name, typ, help string, samples []sample) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	for _, s := range samples {
		if s.labels == "" {
			fmt.Fprintf(w, "%s %v\n", name, s.value)
		} else {
			fmt.Fprintf(w, "%s{%s} %v\n", name, s.labels, s.value)
		}
	}
}

type sample struct {
	labels string
	value  float64
}

// groupTag derives the short unique `group` label from a group key: human
// labels (program, mode, p) make series readable, the tag keeps two
// lineages of the same kernel (e.g. before/after FDO re-optimization)
// from colliding into one series.
func groupTag(key string) string {
	h := sha256.Sum256([]byte(key))
	return hex.EncodeToString(h[:4])
}

// WriteProm renders the full exposition from the process-wide aggregator.
func WriteProm(w io.Writer) { WritePromFor(w, telemetry.Default()) }

// WritePromFor renders the full exposition from ag: expvar gauges, run
// counters, then per-group per-site rollups.
func WritePromFor(w io.Writer, ag *telemetry.Aggregator) {
	for _, varName := range expvarGauges {
		v := expvar.Get(varName)
		if v == nil {
			continue
		}
		fields := flatten(v.String())
		names := make([]string, 0, len(fields))
		for k := range fields {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			writeFamily(w, namePrefix+varName+"_"+k, "gauge",
				fmt.Sprintf("expvar %s field %s.", varName, k),
				[]sample{{value: fields[k]}})
		}
	}

	snap := ag.Snapshot()
	writeFamily(w, namePrefix+"runs_total", "counter",
		"Runs observed by the aggregator since process start.",
		[]sample{{value: float64(snap.Runs)}})
	writeFamily(w, namePrefix+"run_errors_total", "counter",
		"Observed runs that ended in an error.",
		[]sample{{value: float64(snap.Errors)}})
	writeFamily(w, namePrefix+"run_retries_total", "counter",
		"Extra team attempts spent by the run policy (attempts beyond the first).",
		[]sample{{value: float64(snap.Retries)}})
	writeFamily(w, namePrefix+"run_seq_fallbacks_total", "counter",
		"Runs that degraded to the sequential fallback.",
		[]sample{{value: float64(snap.SeqFallbacks)}})
	writeFamily(w, namePrefix+"watchdog_trips_total", "counter",
		"Watchdog deadlock reports produced by this process.",
		[]sample{{value: float64(spmdrt.WatchdogTrips())}})

	if len(snap.Groups) == 0 {
		return
	}

	groupLabels := func(g *telemetry.GroupSnapshot) string {
		return fmt.Sprintf(`group="%s",program="%s",mode="%s",p="%d"`,
			groupTag(g.Key), g.Program, g.Mode, g.Workers)
	}
	var gruns, gelapsed []sample
	var ops, waitNS, quant, episodes, slackNS, pruns []sample
	for i := range snap.Groups {
		g := &snap.Groups[i]
		gl := groupLabels(g)
		gruns = append(gruns, sample{gl, float64(g.Runs)})
		for _, q := range []struct {
			q float64
			l string
		}{{0.5, "0.5"}, {0.99, "0.99"}} {
			gelapsed = append(gelapsed, sample{
				gl + fmt.Sprintf(`,quantile="%s"`, q.l),
				float64(g.Elapsed.Quantile(q.q)),
			})
		}
		p := g.Profile
		if p == nil || len(p.Sites) == 0 {
			continue
		}
		runs := float64(p.Runs)
		if runs == 0 {
			runs = 1
		}
		siteLabels := func(sp *profile.SiteProfile, extra string) string {
			l := gl + fmt.Sprintf(`,site="%d",kind="%s"`, sp.Site, sp.Kind)
			if extra != "" {
				l += "," + extra
			}
			return l
		}
		for j := range p.Sites {
			sp := &p.Sites[j]
			ops = append(ops, sample{siteLabels(sp, ""), float64(sp.Ops) / runs})
			waitNS = append(waitNS, sample{siteLabels(sp, ""), float64(sp.Wait.SumNS) / runs})
			for _, q := range []struct {
				q float64
				l string
			}{{0.5, "0.5"}, {0.99, "0.99"}} {
				quant = append(quant, sample{
					siteLabels(sp, fmt.Sprintf(`quantile="%s"`, q.l)),
					float64(sp.Wait.Quantile(q.q)),
				})
			}
			if sp.Episodes > 0 {
				episodes = append(episodes, sample{siteLabels(sp, ""), float64(sp.Episodes) / runs})
				slackNS = append(slackNS, sample{siteLabels(sp, ""), float64(sp.SlackSumNS) / runs})
			}
		}
		pruns = append(pruns, sample{gl, float64(p.Runs)})
	}
	writeFamily(w, namePrefix+"group_runs", "counter",
		"Runs aggregated per kernel group.", gruns)
	writeFamily(w, namePrefix+"run_elapsed_ns", "gauge",
		"Execution-latency quantiles per kernel group in nanoseconds (aggregated sketch).", gelapsed)
	if len(ops) == 0 {
		return
	}
	writeFamily(w, namePrefix+"site_sync_ops", "gauge",
		"Dynamic sync operations per run at the site (aggregated across runs).", ops)
	writeFamily(w, namePrefix+"site_wait_ns_total", "gauge",
		"Blocking wait nanoseconds per run at the site (aggregated across runs).", waitNS)
	writeFamily(w, namePrefix+"site_wait_ns", "gauge",
		"Blocking wait quantiles in nanoseconds at the site (aggregated sketch).", quant)
	if len(episodes) > 0 {
		writeFamily(w, namePrefix+"site_barrier_episodes", "gauge",
			"Barrier episodes per run at the site (aggregated across runs).", episodes)
		writeFamily(w, namePrefix+"site_barrier_slack_ns_total", "gauge",
			"Barrier arrival-slack nanoseconds per run at the site (aggregated across runs).", slackNS)
	}
	writeFamily(w, namePrefix+"profile_runs", "counter",
		"Runs folded into each group's profile rollup.", pruns)
}

// Handler serves the exposition for the process-wide aggregator.
func Handler() http.Handler { return HandlerFor(telemetry.Default()) }

// HandlerFor serves the exposition for ag at any path (mount on /metrics).
func HandlerFor(ag *telemetry.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePromFor(w, ag)
	})
}

// Health is the /healthz payload.
type Health struct {
	// Status is "ok" or "degraded" (degraded also returns HTTP 503, so
	// load-balancer probes need no JSON parsing).
	Status        string `json:"status"`
	UptimeNS      int64  `json:"uptime_ns"`
	Runs          int64  `json:"runs"`
	Errors        int64  `json:"errors"`
	Retries       int64  `json:"retries"`
	SeqFallbacks  int64  `json:"seq_fallbacks"`
	WatchdogTrips int64  `json:"watchdog_trips"`
	LastOutcome   string `json:"last_outcome,omitempty"`
	// Pool is the flattened "team_pool" expvar (absent before the pool's
	// first use).
	Pool map[string]float64 `json:"pool,omitempty"`
}

// healthFor judges health from the last run outcome and the pool's
// quarantine/rebuild balance.
func healthFor(ag *telemetry.Aggregator) Health {
	snap := ag.Snapshot()
	h := Health{
		Status:        "ok",
		UptimeNS:      snap.UptimeNS,
		Runs:          snap.Runs,
		Errors:        snap.Errors,
		Retries:       snap.Retries,
		SeqFallbacks:  snap.SeqFallbacks,
		WatchdogTrips: spmdrt.WatchdogTrips(),
		LastOutcome:   snap.LastOutcome,
	}
	if v := expvar.Get("team_pool"); v != nil {
		h.Pool = flatten(v.String())
	}
	// Degraded: the most recent run failed, or the pool has quarantined
	// teams it has not yet rebuilt (a rebuild in flight or stuck).
	if snap.LastOutcome == telemetry.OutcomeError {
		h.Status = "degraded"
	}
	if h.Pool != nil && h.Pool["quarantines"] > h.Pool["rebuilt"] {
		h.Status = "degraded"
	}
	return h
}

// HealthHandler serves /healthz for ag.
func HealthHandler(ag *telemetry.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		h := healthFor(ag)
		w.Header().Set("Content-Type", "application/json")
		if h.Status != "ok" {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h)
	})
}

// RunsHandler serves /runs for ag: recent run summaries, newest first,
// as a JSON array. ?n=K limits the count (default: the whole ring).
func RunsHandler(ag *telemetry.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if s := r.URL.Query().Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 0 {
				http.Error(w, "bad n parameter", http.StatusBadRequest)
				return
			}
			n = v
		}
		runs := ag.Recent(n)
		if runs == nil {
			runs = []telemetry.RunSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(runs)
	})
}

// SpansHandler serves /spans/<trace-id> for ag: the run's span export,
// wrapped in the versioned envelope (tool "spmdrun-spans"). 404 when the
// trace is unknown, evicted from the ring, or ran without spans.
func SpansHandler(ag *telemetry.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/spans/")
		if id == "" || strings.Contains(id, "/") {
			http.Error(w, "want /spans/<trace-id>", http.StatusBadRequest)
			return
		}
		exp := ag.Spans(id)
		if exp == nil {
			http.Error(w, "unknown trace id (evicted, or the run collected no spans)", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		envelope.Write(w, envelope.ToolSpans, exp)
	})
}

// DebugMux assembles the full debug-server mux for ag. Exported so tests
// and the future barrierd service mount the identical surface.
func DebugMux(ag *telemetry.Aggregator) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", HandlerFor(ag))
	mux.Handle("/healthz", HealthHandler(ag))
	mux.Handle("/runs", RunsHandler(ag))
	mux.Handle("/spans/", SpansHandler(ag))
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Server is the running debug listener. Stop it with Shutdown (graceful:
// in-flight scrapes drain) or Close (immediate).
type Server struct {
	srv  *http.Server
	addr string
}

// Addr returns the listener's resolved address (":0" becomes concrete).
func (s *Server) Addr() string { return s.addr }

// Shutdown stops the listener gracefully: no new connections, in-flight
// requests drain until they finish or ctx expires.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close drops the listener and all active connections immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the debug listener (`spmdrun -metrics-addr`) on the
// process-wide aggregator. A bind failure is returned (fatal
// configuration error for callers).
func Serve(addr string) (*Server, error) {
	return ServeAggregator(addr, telemetry.Default())
}

// ServeAggregator starts a debug listener rendering ag.
func ServeAggregator(addr string, ag *telemetry.Aggregator) (*Server, error) {
	srv := &http.Server{Addr: addr, Handler: DebugMux(ag)}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{srv: srv, addr: ln.Addr().String()}
	go srv.Serve(ln)
	return s, nil
}
