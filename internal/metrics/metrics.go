// Package metrics renders the process's observability surfaces in
// Prometheus text exposition format (version 0.0.4): the expvar gauges
// the runtime already publishes ("team_pool" from the persistent-team
// pool, "barrier_analysis" from the compile side) plus per-site summaries
// of the most recent sync profile. `spmdrun -metrics-addr` serves it on a
// debug listener; the `barrierd` service (ROADMAP item 4) will reuse the
// same handler as its scrape endpoint.
//
// Output is deterministic: metric families are sorted by name, label sets
// by site id, so two scrapes of identical state are byte-identical.
package metrics

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"sync/atomic"

	"repro/internal/profile"
)

// namePrefix is prepended to every exported metric family.
const namePrefix = "spmd_"

// latest is the most recent profile installed with SetProfile.
var latest atomic.Pointer[profile.Profile]

// SetProfile installs the profile whose per-site summaries the next
// scrape reports (typically the profile of the run that just finished).
func SetProfile(p *profile.Profile) { latest.Store(p) }

// expvarGauges are the process-wide expvar surfaces exported as gauge
// families: each numeric field of the published value becomes
// spmd_<var>_<field>.
var expvarGauges = []string{"team_pool", "barrier_analysis"}

// flatten extracts the numeric leaves of an expvar value (rendered as
// JSON by expvar's contract) into name→value pairs.
func flatten(jsonText string) map[string]float64 {
	var raw map[string]json.Number
	if err := json.Unmarshal([]byte(jsonText), &raw); err != nil {
		return nil
	}
	out := make(map[string]float64, len(raw))
	for k, n := range raw {
		if v, err := n.Float64(); err == nil {
			out[k] = v
		}
	}
	return out
}

// writeFamily emits one metric family header plus its samples.
func writeFamily(w io.Writer, name, help string, samples []sample) {
	fmt.Fprintf(w, "# HELP %s %s\n", name, help)
	fmt.Fprintf(w, "# TYPE %s gauge\n", name)
	for _, s := range samples {
		if s.labels == "" {
			fmt.Fprintf(w, "%s %v\n", name, s.value)
		} else {
			fmt.Fprintf(w, "%s{%s} %v\n", name, s.labels, s.value)
		}
	}
}

type sample struct {
	labels string
	value  float64
}

// WriteProm renders the full exposition: expvar gauges first, then the
// per-site summaries of the latest profile.
func WriteProm(w io.Writer) {
	for _, varName := range expvarGauges {
		v := expvar.Get(varName)
		if v == nil {
			continue
		}
		fields := flatten(v.String())
		names := make([]string, 0, len(fields))
		for k := range fields {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			writeFamily(w, namePrefix+varName+"_"+k,
				fmt.Sprintf("expvar %s field %s.", varName, k),
				[]sample{{value: fields[k]}})
		}
	}

	p := latest.Load()
	if p == nil || len(p.Sites) == 0 {
		return
	}
	runs := float64(p.Runs)
	if runs == 0 {
		runs = 1
	}
	siteLabels := func(sp *profile.SiteProfile, extra string) string {
		l := fmt.Sprintf(`site="%d",kind="%s"`, sp.Site, sp.Kind)
		if extra != "" {
			l += "," + extra
		}
		return l
	}
	var ops, waitNS, quant, episodes, slackNS []sample
	for i := range p.Sites {
		sp := &p.Sites[i]
		ops = append(ops, sample{siteLabels(sp, ""), float64(sp.Ops) / runs})
		waitNS = append(waitNS, sample{siteLabels(sp, ""), float64(sp.Wait.SumNS) / runs})
		for _, q := range []struct {
			q float64
			l string
		}{{0.5, "0.5"}, {0.99, "0.99"}} {
			quant = append(quant, sample{
				siteLabels(sp, fmt.Sprintf(`quantile="%s"`, q.l)),
				float64(p.Sites[i].Wait.Quantile(q.q)),
			})
		}
		if sp.Episodes > 0 {
			episodes = append(episodes, sample{siteLabels(sp, ""), float64(sp.Episodes) / runs})
			slackNS = append(slackNS, sample{siteLabels(sp, ""), float64(sp.SlackSumNS) / runs})
		}
	}
	writeFamily(w, namePrefix+"site_sync_ops",
		"Dynamic sync operations per run at the site (latest profile).", ops)
	writeFamily(w, namePrefix+"site_wait_ns_total",
		"Blocking wait nanoseconds per run at the site (latest profile).", waitNS)
	writeFamily(w, namePrefix+"site_wait_ns",
		"Blocking wait quantiles in nanoseconds at the site (latest profile).", quant)
	if len(episodes) > 0 {
		writeFamily(w, namePrefix+"site_barrier_episodes",
			"Barrier episodes per run at the site (latest profile).", episodes)
		writeFamily(w, namePrefix+"site_barrier_slack_ns_total",
			"Barrier arrival-slack nanoseconds per run at the site (latest profile).", slackNS)
	}
	writeFamily(w, namePrefix+"profile_runs",
		"Runs aggregated into the latest installed profile.",
		[]sample{{value: float64(p.Runs)}})
}

// Handler serves the exposition at any path (mount it on /metrics).
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteProm(w)
	})
}

// Serve starts the debug listener (`spmdrun -metrics-addr`): /metrics
// serves the Prometheus exposition, /debug/vars stays on expvar's default
// handler via the default mux. Returns the listener error channel-free:
// callers treat a bind failure as fatal configuration error.
func Serve(addr string) (*http.Server, error) {
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Addr: addr, Handler: mux}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv.Addr = ln.Addr().String() // resolve ":0" for callers/logs
	go srv.Serve(ln)
	return srv, nil
}
