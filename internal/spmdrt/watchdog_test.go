package spmdrt

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// deadlockTeam runs fn on a watchdog-armed team and requires a
// DeadlockError naming the given primitive in at least one wait status.
func deadlockTeam(t *testing.T, n int, fn func(team *Team, w int), wantPrim string) *DeadlockError {
	t.Helper()
	team := NewTeam(n, Central)
	team.SetWatchdog(100 * time.Millisecond)
	err := team.Run(func(w int) { fn(team, w) })
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("Run returned %v, want *DeadlockError", err)
	}
	if len(de.Workers) != n {
		t.Fatalf("report has %d worker entries, want %d", len(de.Workers), n)
	}
	found := false
	for _, ws := range de.Workers {
		if ws.Blocked && strings.Contains(ws.Prim, wantPrim) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no worker blocked in %q; report:\n%v", wantPrim, de)
	}
	if !strings.Contains(de.Error(), "watchdog") {
		t.Errorf("report text %q does not mention the watchdog", de.Error())
	}
	return de
}

func TestWatchdogBarrierDeadlock(t *testing.T) {
	for _, k := range []BarrierKind{Central, Tree, Dissemination} {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			t.Parallel()
			team := NewTeam(4, k)
			team.SetWatchdog(100 * time.Millisecond)
			err := team.Run(func(w int) {
				if w == 2 {
					return // desert the team: the barrier can never fill
				}
				team.Barrier(w)
			})
			var de *DeadlockError
			if !errors.As(err, &de) {
				t.Fatalf("Run returned %v, want *DeadlockError", err)
			}
			blocked := 0
			for _, ws := range de.Workers {
				if ws.Blocked {
					blocked++
					if !strings.Contains(ws.Prim, "barrier") {
						t.Errorf("worker %d blocked in %q, want a barrier", ws.Worker, ws.Prim)
					}
					if ws.Detail == "" {
						t.Errorf("worker %d report has no barrier detail", ws.Worker)
					}
				}
			}
			if blocked == 0 {
				t.Fatalf("no blocked workers in report:\n%v", de)
			}
			if de.Workers[2].Blocked {
				t.Errorf("deserter reported as blocked:\n%v", de)
			}
		})
	}
}

func TestWatchdogCounterDeadlock(t *testing.T) {
	de := deadlockTeam(t, 3, func(team *Team, w int) {
		c := team.NewCounter() // never incremented
		c.Site = "test site 7"
		c.WaitGEAs(w, 5)
	}, "counter")
	for _, ws := range de.Workers {
		if !ws.Blocked {
			continue
		}
		if ws.Target != 5 || ws.Observed != 0 {
			t.Errorf("worker %d target/observed = %d/%d, want 5/0", ws.Worker, ws.Target, ws.Observed)
		}
		if ws.Detail != "test site 7" {
			t.Errorf("worker %d detail = %q, want the counter site label", ws.Worker, ws.Detail)
		}
	}
}

func TestWatchdogP2PDeadlock(t *testing.T) {
	de := deadlockTeam(t, 2, func(team *Team, w int) {
		p := team.NewP2P()
		if w == 0 {
			p.WaitForAs(0, 1, 1) // worker 1 never posts to ITS OWN p2p set
		}
	}, "p2p")
	st := de.Workers[0]
	if !st.Blocked || !strings.Contains(st.Detail, "w1") {
		t.Errorf("worker 0 status %+v does not name the awaited peer", st)
	}
}

// TestWorkerPanicPropagates is the regression test for the pre-hardening
// behavior where a worker panic left the rest of the team spinning forever
// in the join barrier: the panic must cancel the team and reach the caller.
func TestWorkerPanicPropagates(t *testing.T) {
	team := NewTeam(4, Central)
	start := time.Now()
	err := team.Run(func(w int) {
		if w == 3 {
			panic("kernel exploded")
		}
		// Everyone else heads into a barrier that can now never fill.
		team.Barrier(w)
	})
	if took := time.Since(start); took > 30*time.Second {
		t.Fatalf("Run took %v; panic did not cancel the team", took)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
	if pe.Worker != 3 {
		t.Errorf("PanicError.Worker = %d, want 3", pe.Worker)
	}
	if pe.Value != "kernel exploded" {
		t.Errorf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if pe.Stack == "" {
		t.Error("PanicError carries no stack trace")
	}
	if !strings.Contains(pe.Error(), "kernel exploded") {
		t.Errorf("error text %q omits the panic value", pe.Error())
	}
}

func TestWorkerPanicCancelsCounterWaiters(t *testing.T) {
	team := NewTeam(3, Central)
	c := team.NewCounter()
	err := team.Run(func(w int) {
		if w == 0 {
			panic("producer died")
		}
		c.WaitGEAs(w, 100) // would block forever without cancellation
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("Run returned %v, want *PanicError", err)
	}
}

func TestWatchdogDisarmed(t *testing.T) {
	// Without a deadline the team must complete normally and return nil.
	team := NewTeam(4, Central)
	if err := team.Run(func(w int) {
		for i := 0; i < 20; i++ {
			team.Barrier(w)
		}
	}); err != nil {
		t.Fatalf("healthy run returned %v", err)
	}
}

func TestWatchdogNotTrippedByHealthyRun(t *testing.T) {
	team := NewTeam(4, Dissemination)
	team.SetWatchdog(5 * time.Second)
	c := team.NewCounter()
	if err := team.Run(func(w int) {
		for i := 1; i <= 50; i++ {
			team.Barrier(w)
			if w == 0 {
				c.Add(1)
			}
			c.WaitGEAs(w, int64(i))
		}
	}); err != nil {
		t.Fatalf("healthy run returned %v", err)
	}
}

func TestWaitStatusString(t *testing.T) {
	s := WaitStatus{Worker: 2, Blocked: true, Prim: "counter", Detail: "site 3",
		Target: 8, Observed: 5, For: 250 * time.Millisecond}
	out := s.String()
	for _, want := range []string{"w2", "counter", "site 3", "target=8", "observed=5"} {
		if !strings.Contains(out, want) {
			t.Errorf("status %q missing %q", out, want)
		}
	}
	idle := WaitStatus{Worker: 1}
	if !strings.Contains(idle.String(), "running") {
		t.Errorf("idle status %q should say running", idle.String())
	}
}
