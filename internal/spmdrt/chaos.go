package spmdrt

import (
	"math/rand"
	"runtime"
	"time"
)

// Chaos is a deterministic, seed-driven schedule perturbation layer for
// stress-testing eliminated synchronization under adversarial thread
// timing. Each worker draws from its own seed-derived stream, so the
// *decision sequence* (which perturbation fires at each sync point) is
// reproducible from the seed alone even though wall-clock timing is not.
// One designated slow worker (chosen by the seed) receives extra delays,
// modeling the straggler that barrier elimination must still tolerate.
//
// All methods are safe on a nil receiver (no-ops), so callers can thread
// an optional *Chaos without guards. Each worker must only call with its
// own rank: the per-worker streams are not locked.
type Chaos struct {
	n    int
	slow int
	// stall, when positive (EnableStall), arms rare long freezes: roughly
	// one sync point in 48 per worker sleeps this long, modeling an
	// operator-visible stall (a core stolen by another tenant, a paging
	// storm) that should trip an armed watchdog and exercise retry paths.
	stall time.Duration
	ws    []chaosState
}

type chaosState struct {
	rng *rand.Rand
	_   pad
}

// NewChaos builds a perturbation layer for n workers from a seed.
func NewChaos(seed int64, n int) *Chaos {
	if n <= 0 {
		panic("spmdrt: chaos needs at least one worker")
	}
	c := &Chaos{n: n, ws: make([]chaosState, n)}
	c.slow = int(splitmix(uint64(seed)) % uint64(n))
	for w := range c.ws {
		c.ws[w].rng = rand.New(rand.NewSource(int64(splitmix(uint64(seed) ^ uint64(w+1)*0x9E3779B97F4A7C15))))
	}
	return c
}

// splitmix is SplitMix64, used to decorrelate per-worker seeds.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// EnableStall arms rare seed-driven long freezes of duration d (<= 0 is a
// no-op). The stall decision rides the same per-worker streams as the
// other perturbations, so which sync points stall is reproducible from
// the seed; arming it changes the decision sequence (one extra draw per
// sync point), which is why it is off unless explicitly requested.
func (c *Chaos) EnableStall(d time.Duration) {
	if c == nil || d <= 0 {
		return
	}
	c.stall = d
}

// SlowWorker returns the designated straggler's rank, or -1 for nil.
func (c *Chaos) SlowWorker() int {
	if c == nil {
		return -1
	}
	return c.slow
}

// PreSync perturbs worker w just before it enters a synchronization
// operation (arriving at a barrier late, posting a counter late).
func (c *Chaos) PreSync(w int) {
	if c == nil {
		return
	}
	c.perturb(w)
}

// PostSync perturbs worker w just after it leaves a synchronization
// operation (racing ahead of slower peers into the next group).
func (c *Chaos) PostSync(w int) {
	if c == nil {
		return
	}
	c.perturb(w)
}

// perturb draws one perturbation decision and applies it. The returned
// code identifies the decision for determinism tests: 0 none, 1..4 yield
// burst length, 100+µs sleep, 1000+µs straggler sleep, 10000 stall.
func (c *Chaos) perturb(w int) int {
	r := c.ws[w].rng
	code := 0
	if c.stall > 0 && r.Intn(48) == 0 {
		time.Sleep(c.stall)
		return 10000
	}
	switch p := r.Intn(100); {
	case p < 35:
		n := 1 + r.Intn(4)
		code = n
		for i := 0; i < n; i++ {
			runtime.Gosched()
		}
	case p < 43:
		d := 1 + r.Intn(15)
		code = 100 + d
		time.Sleep(time.Duration(d) * time.Microsecond)
	}
	if w == c.slow && r.Intn(3) == 0 {
		d := 5 + r.Intn(45)
		code = 1000 + d
		time.Sleep(time.Duration(d) * time.Microsecond)
	}
	return code
}
