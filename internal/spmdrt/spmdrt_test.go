package spmdrt

import (
	"sync/atomic"
	"testing"
)

func testBarrierOrdering(t *testing.T, kind BarrierKind, n, rounds int) {
	t.Helper()
	team := NewTeam(n, kind)
	// Each worker increments its slot, crosses the barrier, and checks
	// that every other worker's slot reached the round number: a barrier
	// that lets anyone through early fails immediately.
	slots := make([]atomic.Int64, n)
	fail := atomic.Int64{}
	err := team.Run(func(w int) {
		for r := 1; r <= rounds; r++ {
			slots[w].Store(int64(r))
			team.Barrier(w)
			for i := 0; i < n; i++ {
				if got := slots[i].Load(); got < int64(r) {
					fail.Store(int64(i)*1000000 + got)
				}
			}
			team.Barrier(w)
		}
	})
	if err != nil {
		t.Fatalf("%v barrier with %d workers: Run: %v", kind, n, err)
	}
	if f := fail.Load(); f != 0 {
		t.Fatalf("%v barrier with %d workers leaked: code %d", kind, n, f)
	}
	if got := team.Stats.Barriers.Load(); got != int64(2*rounds) {
		t.Errorf("barrier episodes = %d, want %d", got, 2*rounds)
	}
}

func TestBarriers(t *testing.T) {
	kinds := []BarrierKind{Central, Tree, Dissemination}
	sizes := []int{1, 2, 3, 4, 7, 8, 16, 33} // includes > NumCPU and non powers of two
	for _, k := range kinds {
		for _, n := range sizes {
			k, n := k, n
			t.Run(k.String()+"/"+itoa(n), func(t *testing.T) {
				t.Parallel()
				testBarrierOrdering(t, k, n, 50)
			})
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestCounterProducerConsumer(t *testing.T) {
	c := NewCounter()
	team := NewTeam(8, Central)
	data := make([]int64, 8)
	err := team.Run(func(w int) {
		if w < 4 {
			data[w] = int64(w) + 100
			c.Add(1)
		} else {
			c.WaitGE(4)
			for i := 0; i < 4; i++ {
				if data[i] != int64(i)+100 {
					t.Errorf("worker %d read stale data[%d]=%d", w, i, data[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if c.Load() != 4 {
		t.Errorf("counter = %d, want 4", c.Load())
	}
}

func TestCounterMonotonicWaits(t *testing.T) {
	c := NewCounter()
	done := make(chan struct{})
	go func() {
		c.WaitGE(10)
		close(done)
	}()
	for i := 0; i < 10; i++ {
		c.Add(1)
	}
	<-done
}

func TestP2PPipeline(t *testing.T) {
	const n = 6
	const steps = 200
	p := NewP2P(n)
	team := NewTeam(n, Central)
	// Pipeline: worker w at step s waits for worker w-1 to have posted
	// step s. progress[w] must therefore never exceed progress[w-1].
	progress := make([]atomic.Int64, n)
	bad := atomic.Bool{}
	err := team.Run(func(w int) {
		for s := int64(1); s <= steps; s++ {
			if w > 0 {
				p.WaitFor(w-1, s)
				if progress[w-1].Load() < s {
					bad.Store(true)
				}
			}
			progress[w].Store(s)
			p.Post(w)
		}
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if bad.Load() {
		t.Fatal("pipeline order violated")
	}
	for w := 0; w < n; w++ {
		if p.Progress(w) != steps {
			t.Errorf("worker %d progress = %d", w, p.Progress(w))
		}
	}
}

func TestStatsSnapshot(t *testing.T) {
	var s Stats
	s.Barriers.Add(3)
	s.CounterIncrs.Add(2)
	s.CounterWaits.Add(5)
	s.NeighborWaits.Add(7)
	s.Dispatches.Add(1)
	snap := s.Snapshot()
	if snap.Barriers != 3 || snap.CounterIncrs != 2 || snap.CounterWaits != 5 ||
		snap.NeighborWaits != 7 || snap.Dispatches != 1 {
		t.Errorf("snapshot = %+v", snap)
	}
	if snap.String() == "" {
		t.Error("empty string")
	}
}

func TestBarrierKindString(t *testing.T) {
	if Central.String() != "central" || Tree.String() != "tree" || Dissemination.String() != "dissemination" {
		t.Error("kind strings wrong")
	}
}

func TestNewTeamPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewTeam(0) did not panic")
		}
	}()
	NewTeam(0, Central)
}

func TestNewBarrierPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBarrier(0 workers) did not panic")
		}
	}()
	NewBarrier(Tree, 0)
}

func TestSingleWorkerBarrierIsNoop(t *testing.T) {
	for _, k := range []BarrierKind{Central, Tree, Dissemination} {
		team := NewTeam(1, k)
		if err := team.Run(func(w int) {
			for i := 0; i < 10; i++ {
				team.Barrier(w)
			}
		}); err != nil {
			t.Fatalf("%v: Run: %v", k, err)
		}
		if team.Stats.Barriers.Load() != 10 {
			t.Errorf("%v: episodes = %d", k, team.Stats.Barriers.Load())
		}
	}
}
