package spmdrt

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Monitor is the team's stall watchdog and failure latch. Every blocking
// primitive registers its wait site (which worker is blocked in which
// barrier/counter/point-to-point wait, and on what value) while it spins;
// when a wait exceeds the team's stall deadline the monitor snapshots all
// registered sites into a structured DeadlockError and aborts the run, so
// an unsound synchronization schedule surfaces as a per-worker deadlock
// report instead of a hang. The monitor is also how worker panics release
// the rest of the team: the first failure latches, and every monitored
// wait polls the latch and unwinds.
type Monitor struct {
	n          int
	deadlineNS atomic.Int64
	// gen mirrors the owning team's run-generation counter so deadlock
	// reports attribute to the specific run of a reused team.
	gen   atomic.Int64
	sites []siteSlot

	mu       sync.Mutex
	failErr  error
	failedCh chan struct{}
	failed   atomic.Bool
}

type siteSlot struct {
	p atomic.Pointer[WaitSite]
	_ pad
}

func newMonitor(n int) *Monitor {
	return &Monitor{n: n, sites: make([]siteSlot, n), failedCh: make(chan struct{})}
}

// setDeadline arms (or, with d <= 0, disarms) the stall watchdog.
func (m *Monitor) setDeadline(d time.Duration) { m.deadlineNS.Store(int64(d)) }

// fail latches the first failure and releases every monitored wait.
func (m *Monitor) fail(err error) {
	m.mu.Lock()
	if m.failErr == nil {
		m.failErr = err
		close(m.failedCh)
	}
	m.mu.Unlock()
	m.failed.Store(true)
}

// Err returns the latched failure, if any.
func (m *Monitor) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failErr
}

// WaitSite describes one worker's current blocking wait.
type WaitSite struct {
	// Worker is the blocked worker's rank.
	Worker int
	// Prim names the primitive: "barrier(central)", "counter", "p2p".
	Prim string
	// Detail is primitive-specific: barrier episode/sense/round, the peer
	// a point-to-point wait is watching, the counter's sync site.
	Detail string
	// Target is the value the wait needs to observe (the barrier arrival
	// count, the counter target, the peer progress value).
	Target int64
	// observe samples the currently observed value when a deadlock report
	// is assembled.
	observe func() int64
	// Since is when the wait left its initial spin phase.
	Since time.Time
}

// WaitStatus is one worker's entry in a deadlock report.
type WaitStatus struct {
	Worker   int
	Blocked  bool
	Prim     string
	Detail   string
	Target   int64
	Observed int64
	For      time.Duration
}

func (s WaitStatus) String() string {
	if !s.Blocked {
		return fmt.Sprintf("w%d: running (not blocked in a runtime sync primitive)", s.Worker)
	}
	out := fmt.Sprintf("w%d: blocked in %s", s.Worker, s.Prim)
	if s.Detail != "" {
		out += " [" + s.Detail + "]"
	}
	out += fmt.Sprintf(" target=%d observed=%d for %s", s.Target, s.Observed, s.For.Round(time.Millisecond))
	return out
}

// DeadlockError is the structured report the watchdog produces when a
// blocking wait exceeds the team's stall deadline: one entry per worker
// with the sync site it is blocked at (or "running" for workers stuck
// outside runtime primitives).
type DeadlockError struct {
	// Deadline is the stall deadline that was exceeded.
	Deadline time.Duration
	// Trigger is the worker whose wait tripped the watchdog.
	Trigger int
	// Generation is the team's run generation (Team.Generation) when the
	// report was assembled, so a report from a reused team attributes to
	// the specific run, not just the site.
	Generation int64
	// Workers holds one status per team worker.
	Workers []WaitStatus
}

func (e *DeadlockError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "spmdrt: watchdog: [gen %d] worker %d made no progress for %s; per-worker wait sites:",
		e.Generation, e.Trigger, e.Deadline)
	for _, w := range e.Workers {
		sb.WriteString("\n  " + w.String())
	}
	return sb.String()
}

// CancelError reports a run aborted by external cancellation (a caller's
// context being cancelled or timing out) rather than by a runtime failure.
// It rides the same failure latch as the watchdog: workers blocked in
// monitored primitives unwind promptly, compute-bound workers are
// abandoned after the unwind grace period.
type CancelError struct {
	// Cause is the cancellation reason (typically a context error).
	Cause error
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("spmdrt: run cancelled: %v", e.Cause)
}

func (e *CancelError) Unwrap() error { return e.Cause }

// PanicError wraps a panic raised by one team worker so Team.Run can cancel
// the remaining workers and surface the panic value to the caller.
type PanicError struct {
	Worker int
	Value  any
	Stack  string
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("spmdrt: worker %d panicked: %v\n%s", e.Worker, e.Value, e.Stack)
}

// teamAbort is the sentinel panic used to unwind workers out of monitored
// waits after the team has failed; Team.Run swallows it.
type teamAbort struct{}

// watchdogTrips counts watchdog deadlock reports process-wide. The debug
// server's /healthz reads it: trips are the runtime-health signal that
// pool gauges (which only see team lifecycle) cannot show.
var watchdogTrips atomic.Int64

// WatchdogTrips returns how many watchdog deadlock reports this process
// has produced across all teams.
func WatchdogTrips() int64 { return watchdogTrips.Load() }

// deadlockReport snapshots every worker's registered wait site.
func (m *Monitor) deadlockReport(trigger *WaitSite) *DeadlockError {
	watchdogTrips.Add(1)
	e := &DeadlockError{
		Deadline:   time.Duration(m.deadlineNS.Load()),
		Trigger:    trigger.Worker,
		Generation: m.gen.Load(),
	}
	now := time.Now()
	for w := 0; w < m.n; w++ {
		site := m.sites[w].p.Load()
		if site == nil {
			e.Workers = append(e.Workers, WaitStatus{Worker: w})
			continue
		}
		st := WaitStatus{
			Worker:  w,
			Blocked: true,
			Prim:    site.Prim,
			Detail:  site.Detail,
			Target:  site.Target,
			For:     now.Sub(site.Since),
		}
		if site.observe != nil {
			st.Observed = site.observe()
		}
		e.Workers = append(e.Workers, st)
	}
	return e
}

// waitUntil blocks until done() reports true, escalating from a bounded
// busy-spin through runtime.Gosched to short sleeps so oversubscribed
// teams (workers > GOMAXPROCS, including the single-CPU case) cannot
// livelock a stalled wait. With a non-nil monitor the wait registers its
// site (built lazily by mk, only once the fast path fails), polls the
// team failure latch, and enforces the stall deadline.
func waitUntil(m *Monitor, mk func() *WaitSite, done func() bool) {
	for i := 0; i < spinWaits; i++ {
		if done() {
			return
		}
	}
	if m == nil {
		for i := 0; ; i++ {
			if done() {
				return
			}
			if i < 256 {
				runtime.Gosched()
				continue
			}
			time.Sleep(backoff(i - 256))
		}
	}
	site := mk()
	site.Since = time.Now()
	m.sites[site.Worker].p.Store(site)
	defer m.sites[site.Worker].p.Store(nil)
	deadline := time.Duration(m.deadlineNS.Load())
	for i := 0; ; i++ {
		if done() {
			return
		}
		if m.failed.Load() {
			panic(teamAbort{})
		}
		if i < 256 {
			runtime.Gosched()
			continue
		}
		if deadline > 0 && time.Since(site.Since) > deadline {
			m.fail(m.deadlockReport(site))
			panic(teamAbort{})
		}
		time.Sleep(backoff(i - 256))
	}
}

// spinWaits is the busy-spin budget of the waitUntil fast path. Spinning
// only pays when another CPU can flip the awaited condition concurrently;
// on a uniprocessor the awaited worker cannot be running while we spin,
// so every spin round is wasted time on the critical path of a barrier
// episode. The same multicore gate sync.Mutex applies before it spins.
// Captured once at init: GOMAXPROCS rarely changes mid-process, and a
// stale value only costs (or saves) a 64-iteration spin window.
var spinWaits = func() int {
	if runtime.GOMAXPROCS(0) > 1 {
		return 64
	}
	return 0
}()

// backoff escalates 1µs → 128µs over successive sleep rounds: short enough
// that abort/deadline checks stay responsive, long enough that a stalled
// wait costs no meaningful CPU.
func backoff(i int) time.Duration {
	shift := i / 8
	if shift > 7 {
		shift = 7
	}
	return time.Microsecond << shift
}

// runWorkers executes fn on n goroutines, recovering panics into the
// monitor and waiting for completion. After a failure, workers blocked in
// monitored primitives unwind promptly; a worker stuck outside any
// runtime primitive cannot be preempted and is abandoned (leaked) after a
// grace period so the caller still receives the failure report.
//
// Completion is tracked by an atomic countdown whose last decrement closes
// done, not by a helper goroutine blocked in WaitGroup.Wait: such a waiter
// would itself leak whenever a worker is abandoned past the grace period
// (e.g. a run that returns by panic propagation), leaking one goroutine
// per failed run even after every worker eventually exits.
func runWorkers(n int, m *Monitor, fn func(w int)) error {
	done := make(chan struct{})
	var remaining atomic.Int64
	remaining.Store(int64(n))
	for w := 0; w < n; w++ {
		go func(w int) {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(teamAbort); !ok {
						m.fail(&PanicError{Worker: w, Value: r, Stack: string(debug.Stack())})
					}
				}
				if remaining.Add(-1) == 0 {
					close(done)
				}
			}()
			fn(w)
		}(w)
	}
	select {
	case <-done:
	case <-m.failedCh:
		select {
		case <-done:
		case <-time.After(unwindGrace):
		}
	}
	return m.Err()
}

// unwindGrace bounds how long Team.Run waits for workers to unwind after
// the team has failed. A variable so the runtime's own tests can shrink
// it to exercise worker abandonment without multi-second sleeps.
var unwindGrace = 2 * time.Second
