package spmdrt

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withGOMAXPROCS pins GOMAXPROCS for one test. These tests cannot run in
// parallel with each other (the setting is process-global).
func withGOMAXPROCS(t *testing.T, n int) {
	t.Helper()
	old := runtime.GOMAXPROCS(n)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// The primitives busy-wait; without the spin → Gosched → sleep escalation a
// single-P scheduler could livelock (the spinning worker starves the worker
// it waits for). Exercising every primitive under GOMAXPROCS=1 and with
// teams far wider than GOMAXPROCS proves waits always yield the processor.

func TestBarriersSingleProc(t *testing.T) {
	withGOMAXPROCS(t, 1)
	for _, k := range []BarrierKind{Central, Tree, Dissemination} {
		testBarrierOrdering(t, k, 8, 25)
	}
}

func TestBarriersOversubscribed(t *testing.T) {
	withGOMAXPROCS(t, 2)
	for _, k := range []BarrierKind{Central, Tree, Dissemination} {
		testBarrierOrdering(t, k, 16, 25)
	}
}

func TestCounterSingleProc(t *testing.T) {
	withGOMAXPROCS(t, 1)
	team := NewTeam(8, Central)
	c := team.NewCounter()
	var sum atomic.Int64
	if err := team.Run(func(w int) {
		// Each round: producers 0..3 increment, consumers 4..7 wait on the
		// cumulative target. Under GOMAXPROCS=1 consumers may be scheduled
		// first and must yield to let producers run.
		for round := int64(1); round <= 20; round++ {
			if w < 4 {
				c.Add(1)
			} else {
				c.WaitGEAs(w, 4*round)
			}
			team.Barrier(w)
		}
		sum.Add(1)
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 8 {
		t.Fatalf("only %d workers completed", sum.Load())
	}
}

func TestP2PPipelineSingleProc(t *testing.T) {
	withGOMAXPROCS(t, 1)
	const n = 8
	team := NewTeam(n, Central)
	p := team.NewP2P()
	order := make([]atomic.Int64, n)
	bad := atomic.Bool{}
	if err := team.Run(func(w int) {
		for s := int64(1); s <= 50; s++ {
			if w > 0 {
				p.WaitForAs(w, w-1, s)
				if order[w-1].Load() < s {
					bad.Store(true)
				}
			}
			order[w].Store(s)
			p.Post(w)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if bad.Load() {
		t.Fatal("pipeline order violated under GOMAXPROCS=1")
	}
}

func TestP2PPipelineOversubscribed(t *testing.T) {
	withGOMAXPROCS(t, 2)
	const n = 24 // far wider than GOMAXPROCS
	team := NewTeam(n, Central)
	p := team.NewP2P()
	if err := team.Run(func(w int) {
		for s := int64(1); s <= 20; s++ {
			if w > 0 {
				p.WaitForAs(w, w-1, s)
			}
			p.Post(w)
		}
	}); err != nil {
		t.Fatal(err)
	}
	for w := 0; w < n; w++ {
		if p.Progress(w) != 20 {
			t.Errorf("worker %d progress = %d, want 20", w, p.Progress(w))
		}
	}
}
