// Package spmdrt is the SPMD runtime substrate: worker teams executing a
// region function, barrier synchronization in three classic
// implementations (central sense-reversing, combining tree,
// dissemination), producer/consumer counters (§2.2 of the paper) and
// per-worker point-to-point completion counters for neighbor and pipeline
// synchronization. All primitives record dynamic synchronization counts so
// the benchmark harness can reproduce the paper's "barriers executed"
// tables exactly.
//
// The runtime is hardened against the failure modes of an unsound
// synchronization schedule: every blocking primitive escalates its wait
// (spin → Gosched → short sleep) so stalls never livelock, registers its
// wait site with the team Monitor, and — when a stall deadline is armed
// via Team.SetWatchdog — aborts a stalled run with a structured
// per-worker DeadlockError instead of hanging. Team.Run recovers worker
// panics, cancels the remaining workers and returns the panic to the
// caller as a PanicError.
package spmdrt

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/synctrace"
)

// Stats counts dynamic synchronization events. A barrier crossed by all P
// workers counts as one executed barrier, matching the paper's metric.
// Besides the totals, a Stats optionally carries per-sync-site counters
// (InitSites) so the executor can attribute every dynamic event to the
// scheduled boundary that caused it.
type Stats struct {
	Barriers      atomic.Int64
	CounterIncrs  atomic.Int64
	CounterWaits  atomic.Int64
	NeighborWaits atomic.Int64
	Dispatches    atomic.Int64
	// sites, when initialized, holds one padded counter block per
	// scheduled sync site (indexed by 0-based site id).
	sites []siteCounters
}

type siteCounters struct {
	barriers, counterIncrs, counterWaits, neighborWaits atomic.Int64
	_                                                   pad
}

// InitSites allocates per-site counters for n scheduled sync sites.
// Call before the team runs; per-site methods are no-ops until then.
func (s *Stats) InitSites(n int) {
	if n > 0 {
		s.sites = make([]siteCounters, n)
	}
}

// Reset zeroes every counter and drops the per-site attribution,
// returning the Stats to its as-constructed state. Reuse-time only: call
// with no workers running (the persistent-team reset protocol does).
func (s *Stats) Reset() {
	s.Barriers.Store(0)
	s.CounterIncrs.Store(0)
	s.CounterWaits.Store(0)
	s.NeighborWaits.Store(0)
	s.Dispatches.Store(0)
	s.sites = nil
}

// SiteBarrier attributes one executed barrier to 0-based site id.
// Out-of-range ids (including the executor's -1 "unsited") are ignored.
func (s *Stats) SiteBarrier(site int) {
	if site >= 0 && site < len(s.sites) {
		s.sites[site].barriers.Add(1)
	}
}

// SiteCounterIncr attributes one counter increment to a site.
func (s *Stats) SiteCounterIncr(site int) {
	if site >= 0 && site < len(s.sites) {
		s.sites[site].counterIncrs.Add(1)
	}
}

// SiteCounterWait attributes one counter wait to a site.
func (s *Stats) SiteCounterWait(site int) {
	if site >= 0 && site < len(s.sites) {
		s.sites[site].counterWaits.Add(1)
	}
}

// SiteNeighborWait attributes one point-to-point wait to a site.
func (s *Stats) SiteNeighborWait(site int) {
	if site >= 0 && site < len(s.sites) {
		s.sites[site].neighborWaits.Add(1)
	}
}

// Residue reports whether any counter — aggregate or per-site — is
// nonzero. It is the allocation-free form of the post-reset audit: the
// pool checks it on every release, so it must not build the snapshot map
// just to confirm everything is zero.
func (s *Stats) Residue() bool {
	if s.Barriers.Load() != 0 || s.CounterIncrs.Load() != 0 ||
		s.CounterWaits.Load() != 0 || s.NeighborWaits.Load() != 0 ||
		s.Dispatches.Load() != 0 {
		return true
	}
	for i := range s.sites {
		if s.sites[i].barriers.Load() != 0 || s.sites[i].counterIncrs.Load() != 0 ||
			s.sites[i].counterWaits.Load() != 0 || s.sites[i].neighborWaits.Load() != 0 {
			return true
		}
	}
	return false
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Barriers:      s.Barriers.Load(),
		CounterIncrs:  s.CounterIncrs.Load(),
		CounterWaits:  s.CounterWaits.Load(),
		NeighborWaits: s.NeighborWaits.Load(),
		Dispatches:    s.Dispatches.Load(),
	}
	if s.sites != nil {
		snap.PerSite = map[int]SiteCounts{}
		for i := range s.sites {
			sc := SiteCounts{
				Barriers:      s.sites[i].barriers.Load(),
				CounterIncrs:  s.sites[i].counterIncrs.Load(),
				CounterWaits:  s.sites[i].counterWaits.Load(),
				NeighborWaits: s.sites[i].neighborWaits.Load(),
			}
			if sc != (SiteCounts{}) {
				snap.PerSite[i+1] = sc
			}
		}
	}
	return snap
}

// SiteCounts is one sync site's share of the dynamic event totals.
type SiteCounts struct {
	Barriers      int64
	CounterIncrs  int64
	CounterWaits  int64
	NeighborWaits int64
}

// StatsSnapshot is an immutable copy of Stats. PerSite, when the run was
// site-attributed (Stats.InitSites), maps 1-based sync-site ids — the
// numbering of watchdog reports and SabotageEdge — to that site's counts;
// sites that executed no events are omitted.
type StatsSnapshot struct {
	Barriers      int64
	CounterIncrs  int64
	CounterWaits  int64
	NeighborWaits int64
	Dispatches    int64
	PerSite       map[int]SiteCounts
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("barriers=%d counters(incr=%d,wait=%d) neighbor-waits=%d dispatches=%d",
		s.Barriers, s.CounterIncrs, s.CounterWaits, s.NeighborWaits, s.Dispatches)
}

// SiteIDs returns the active site ids in ascending order. Every consumer
// that emits per-site output (profiles, reports, metrics) must iterate
// PerSite through this, never the map directly, so emitted bytes are
// independent of Go's randomized map order.
func (s StatsSnapshot) SiteIDs() []int {
	ids := make([]int, 0, len(s.PerSite))
	for id := range s.PerSite {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// PerSiteString renders the per-site counts, one line per active site in
// site order; empty when the run was not site-attributed.
func (s StatsSnapshot) PerSiteString() string {
	if len(s.PerSite) == 0 {
		return ""
	}
	ids := s.SiteIDs()
	var sb strings.Builder
	for _, id := range ids {
		sc := s.PerSite[id]
		fmt.Fprintf(&sb, "site %d: barriers=%d counters(incr=%d,wait=%d) neighbor-waits=%d\n",
			id, sc.Barriers, sc.CounterIncrs, sc.CounterWaits, sc.NeighborWaits)
	}
	return strings.TrimRight(sb.String(), "\n")
}

// BarrierKind selects a barrier implementation.
type BarrierKind int

const (
	// Central is a sense-reversing barrier on one atomic counter; O(P)
	// contention on a single cache line.
	Central BarrierKind = iota
	// Tree is a combining-tree barrier of arity 4 with a global release.
	Tree
	// Dissemination runs ceil(log2 P) rounds of pairwise signaling.
	Dissemination
)

func (k BarrierKind) String() string {
	switch k {
	case Central:
		return "central"
	case Tree:
		return "tree"
	case Dissemination:
		return "dissemination"
	default:
		return fmt.Sprintf("BarrierKind(%d)", int(k))
	}
}

// Barrier is a reusable P-worker barrier.
type Barrier interface {
	// Wait blocks worker w until all workers of the team arrive.
	Wait(w int)
}

type pad [120]byte

// centralBarrier is the classic sense-reversing centralized barrier.
type centralBarrier struct {
	n     int
	mon   *Monitor
	count atomic.Int64
	sense atomic.Int64
	_     pad
	local []paddedInt
}

type paddedInt struct {
	v   int64
	eps int64 // per-worker episode count, for watchdog reports
	_   pad
}

// NewBarrier constructs a barrier of the given kind for n workers. Teams
// bind their barrier to the team Monitor; a barrier built directly here is
// unmonitored (no watchdog, no abort) but still escalates its waits.
func NewBarrier(kind BarrierKind, n int) Barrier { return newBarrier(kind, n, nil) }

func newBarrier(kind BarrierKind, n int, m *Monitor) Barrier {
	if n <= 0 {
		panic("spmdrt: barrier needs at least one worker")
	}
	switch kind {
	case Tree:
		return newTreeBarrier(n, m)
	case Dissemination:
		return newDisseminationBarrier(n, m)
	default:
		return &centralBarrier{n: n, mon: m, local: make([]paddedInt, n)}
	}
}

func (b *centralBarrier) Wait(w int) {
	mySense := 1 - b.local[w].v
	b.local[w].v = mySense
	b.local[w].eps++
	if b.count.Add(1) == int64(b.n) {
		b.count.Store(0)
		b.sense.Store(mySense)
		return
	}
	waitUntil(b.mon, func() *WaitSite {
		return &WaitSite{
			Worker:  w,
			Prim:    "barrier(central)",
			Detail:  fmt.Sprintf("episode=%d sense=%d", b.local[w].eps, mySense),
			Target:  int64(b.n),
			observe: b.count.Load,
		}
	}, func() bool { return b.sense.Load() == mySense })
}

// treeBarrier: workers combine arrivals up a static arity-4 tree; the root
// flips a global release sense.
type treeBarrier struct {
	n       int
	mon     *Monitor
	nodes   []treeNode
	release atomic.Int64
	local   []paddedInt
}

type treeNode struct {
	parent   int // -1 at root
	expected int64
	count    atomic.Int64
	_        pad
}

const treeArity = 4

func newTreeBarrier(n int, m *Monitor) *treeBarrier {
	// Leaf i = worker i; internal nodes above. Build an array-encoded
	// arity-4 tree over n leaves.
	b := &treeBarrier{n: n, mon: m, local: make([]paddedInt, n)}
	// Simple construction: nodes[0..n-1] are leaves; repeatedly group.
	type level struct{ first, count int }
	b.nodes = make([]treeNode, 0, 2*n)
	for i := 0; i < n; i++ {
		b.nodes = append(b.nodes, treeNode{parent: -1})
	}
	cur := level{0, n}
	for cur.count > 1 {
		parents := (cur.count + treeArity - 1) / treeArity
		firstParent := len(b.nodes)
		for p := 0; p < parents; p++ {
			kids := treeArity
			if p == parents-1 {
				kids = cur.count - p*treeArity
			}
			b.nodes = append(b.nodes, treeNode{parent: -1, expected: int64(kids)})
			for c := 0; c < kids; c++ {
				b.nodes[cur.first+p*treeArity+c].parent = firstParent + p
			}
		}
		cur = level{firstParent, parents}
	}
	return b
}

func (b *treeBarrier) Wait(w int) {
	mySense := 1 - b.local[w].v
	b.local[w].v = mySense
	b.local[w].eps++
	// Propagate arrival upward; the last arriver at each node continues.
	node := b.nodes[w].parent
	for node != -1 {
		nd := &b.nodes[node]
		if nd.count.Add(1) != nd.expected {
			break
		}
		nd.count.Store(0)
		node = nd.parent
		if node == -1 {
			b.release.Store(mySense)
			return
		}
	}
	if b.n == 1 {
		b.release.Store(mySense)
		return
	}
	waitUntil(b.mon, func() *WaitSite {
		return &WaitSite{
			Worker:  w,
			Prim:    "barrier(tree)",
			Detail:  fmt.Sprintf("episode=%d sense=%d", b.local[w].eps, mySense),
			Target:  mySense,
			observe: b.release.Load,
		}
	}, func() bool { return b.release.Load() == mySense })
}

// disseminationBarrier: round r has worker w signal (w + 2^r) mod n and
// wait for a signal from (w - 2^r) mod n; after ceil(log2 n) rounds all
// workers have transitively heard from everyone.
type disseminationBarrier struct {
	n      int
	mon    *Monitor
	rounds int
	// flags[r][w] counts signals received by worker w in round r.
	flags [][]paddedAtomic
	// epoch per worker distinguishes reuse.
	epoch []paddedInt
}

type paddedAtomic struct {
	v atomic.Int64
	_ pad
}

func newDisseminationBarrier(n int, m *Monitor) *disseminationBarrier {
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &disseminationBarrier{n: n, mon: m, rounds: rounds, epoch: make([]paddedInt, n)}
	b.flags = make([][]paddedAtomic, rounds)
	for r := range b.flags {
		b.flags[r] = make([]paddedAtomic, n)
	}
	return b
}

func (b *disseminationBarrier) Wait(w int) {
	b.epoch[w].v++
	target := b.epoch[w].v
	for r := 0; r < b.rounds; r++ {
		peer := (w + (1 << r)) % b.n
		b.flags[r][peer].v.Add(1)
		me := &b.flags[r][w].v
		round := r
		waitUntil(b.mon, func() *WaitSite {
			return &WaitSite{
				Worker: w,
				Prim:   "barrier(dissemination)",
				Detail: fmt.Sprintf("episode=%d round=%d/%d awaiting signal from w%d",
					target, round+1, b.rounds, (w-(1<<round)%b.n+b.n)%b.n),
				Target:  target,
				observe: me.Load,
			}
		}, func() bool { return me.Load() >= target })
	}
}

// Counter is a monotonic producer/consumer counter ("Processors defining
// values can increment a counter, and processors accessing the values wait
// until the counter is incremented to the proper value", §2.2).
type Counter struct {
	v   atomic.Int64
	mon *Monitor
	// Site, if set, labels the counter in watchdog deadlock reports (the
	// executor tags each counter with its sync-site id).
	Site string
	// Trace recording (BindTrace): nil rec disables with one branch.
	rec                *synctrace.Recorder
	traceSite          int32
	kindPost, kindWait synctrace.Kind
}

// NewCounter returns an unmonitored counter starting at zero; use
// Team.NewCounter to bind a counter to a team's watchdog.
func NewCounter() *Counter { return &Counter{} }

// BindTrace attaches a trace recorder: AddAs records an instant `post`
// event and WaitGEAs records a `wait` span, both tagged with the given
// sync-site id. Setup-time only.
func (c *Counter) BindTrace(rec *synctrace.Recorder, site int32, post, wait synctrace.Kind) {
	c.rec, c.traceSite, c.kindPost, c.kindWait = rec, site, post, wait
}

// Add increments the counter by d, releasing satisfied waiters.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// PostAs is Add on behalf of team worker w, recording an instant post
// event when tracing is bound. arg is the caller-chosen event argument
// (the executor passes its deterministic cumulative target / dispatch
// sequence number — NOT the post-add counter value, which is racy under
// concurrent producers and would break run-to-run trace comparison).
func (c *Counter) PostAs(w int, d, arg int64) {
	if c.rec != nil && w >= 0 {
		c.rec.Instant(w, c.kindPost, c.traceSite, arg)
	}
	c.v.Add(d)
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// WaitGE blocks until the counter value is at least target, without
// registering a wait site (anonymous waiter).
func (c *Counter) WaitGE(target int64) { c.WaitGEAs(-1, target) }

// WaitGEAs is WaitGE on behalf of team worker w: if the counter is bound
// to a team, the wait registers with the team Monitor so watchdog reports
// name the blocked worker, its counter site and target-vs-observed values.
func (c *Counter) WaitGEAs(w int, target int64) {
	var start int64
	rec := c.rec
	if rec != nil && w >= 0 {
		start = rec.Now()
	} else {
		rec = nil
	}
	if c.v.Load() >= target {
		if rec != nil {
			rec.Record(w, c.kindWait, c.traceSite, target, start)
		}
		return
	}
	m := c.mon
	if w < 0 {
		m = nil
	}
	waitUntil(m, func() *WaitSite {
		return &WaitSite{
			Worker:  w,
			Prim:    "counter",
			Detail:  c.Site,
			Target:  target,
			observe: c.v.Load,
		}
	}, func() bool { return c.v.Load() >= target })
	if rec != nil {
		rec.Record(w, c.kindWait, c.traceSite, target, start)
	}
}

// P2P provides per-worker monotonic completion counters for neighbor and
// pipeline synchronization: worker w posts its own progress; any worker
// may wait for another worker's progress to reach a value.
type P2P struct {
	slots []*Counter
	mon   *Monitor
	// Trace recording (BindTrace): nil rec disables with one branch.
	rec       *synctrace.Recorder
	traceSite int32
}

// NewP2P builds unmonitored completion counters for n workers; use
// Team.NewP2P to bind them to a team's watchdog.
func NewP2P(n int) *P2P { return newP2P(n, nil) }

func newP2P(n int, m *Monitor) *P2P {
	p := &P2P{slots: make([]*Counter, n), mon: m}
	for i := range p.slots {
		p.slots[i] = &Counter{}
	}
	return p
}

// BindTrace attaches a trace recorder: WaitForAs records a neighbor-wait
// span tagged with the given sync-site id (Arg = the awaited peer's
// rank). Setup-time only.
func (p *P2P) BindTrace(rec *synctrace.Recorder, site int32) {
	p.rec, p.traceSite = rec, site
}

// Post records that worker w completed one more step.
func (p *P2P) Post(w int) { p.slots[w].Add(1) }

// WaitFor blocks until worker w has posted at least value steps
// (anonymous waiter).
func (p *P2P) WaitFor(w int, value int64) { p.WaitForAs(-1, w, value) }

// WaitForAs is WaitFor on behalf of team worker self, registered with the
// team Monitor when the P2P set is team-bound.
func (p *P2P) WaitForAs(self, w int, value int64) {
	var start int64
	rec := p.rec
	if rec != nil && self >= 0 {
		start = rec.Now()
	} else {
		rec = nil
	}
	c := p.slots[w]
	if c.v.Load() >= value {
		if rec != nil {
			rec.Record(self, synctrace.EvNeighborWait, p.traceSite, int64(w), start)
		}
		return
	}
	m := p.mon
	if self < 0 {
		m = nil
	}
	waitUntil(m, func() *WaitSite {
		return &WaitSite{
			Worker:  self,
			Prim:    "p2p",
			Detail:  fmt.Sprintf("awaiting progress of w%d", w),
			Target:  value,
			observe: c.v.Load,
		}
	}, func() bool { return c.v.Load() >= value })
	if rec != nil {
		rec.Record(self, synctrace.EvNeighborWait, p.traceSite, int64(w), start)
	}
}

// Progress returns worker w's posted count.
func (p *P2P) Progress(w int) int64 { return p.slots[w].Load() }

// Team runs SPMD region functions on n workers.
type Team struct {
	N       int
	Stats   *Stats
	barrier Barrier
	kind    BarrierKind
	mon     *Monitor
	// trace, when bound via SetTrace, records barrier episodes; eps holds
	// each worker's episode number (padded, owner-written).
	trace *synctrace.Recorder
	eps   []paddedInt
	// gen counts runs on this team (monotonic, never reset): watchdog
	// reports and trace metadata carry it so a report from a reused team
	// is attributable to the specific run, not just the site.
	gen atomic.Int64
}

// NewTeam creates a team of n workers using the given barrier kind.
func NewTeam(n int, kind BarrierKind) *Team {
	if n <= 0 {
		panic("spmdrt: team needs at least one worker")
	}
	mon := newMonitor(n)
	return &Team{N: n, Stats: &Stats{}, barrier: newBarrier(kind, n, mon), kind: kind, mon: mon}
}

// BarrierKind returns the team's barrier implementation kind.
func (t *Team) BarrierKind() BarrierKind { return t.kind }

// Generation returns the team's run-generation id: the number of Run calls
// started on this team so far. It increases monotonically across reuse and
// is never reset, so deadlock reports and trace metadata stamped with it
// identify the exact run they came from.
func (t *Team) Generation() int64 { return t.gen.Load() }

// SetWatchdog arms the stall watchdog: any team-bound blocking wait that
// makes no progress for d aborts the run with a structured DeadlockError.
// d <= 0 disarms it.
func (t *Team) SetWatchdog(d time.Duration) { t.mon.setDeadline(d) }

// SetTrace binds a sync-event recorder: every barrier episode records an
// enter/exit span per worker. Counters and P2P sets bind separately
// (BindTrace) since only their creator knows the sync-site ids. Call
// before Run; a nil recorder disables barrier tracing.
func (t *Team) SetTrace(rec *synctrace.Recorder) {
	t.trace = rec
	if rec != nil && t.eps == nil {
		t.eps = make([]paddedInt, t.N)
	}
}

// Cancel aborts a running team through the watchdog's failure latch: Run
// returns a *CancelError wrapping cause, and every worker blocked in a
// team-bound primitive unwinds. Safe to call from any goroutine and
// idempotent; calling after the run finished is a no-op on the result.
func (t *Team) Cancel(cause error) { t.mon.fail(&CancelError{Cause: cause}) }

// Failed reports whether the team's failure latch has tripped (watchdog,
// worker panic or cancellation). Workers can poll it at region boundaries
// to stop compute-bound work between synchronizations.
func (t *Team) Failed() bool { return t.mon.failed.Load() }

// NewCounter returns a counter bound to this team's watchdog.
func (t *Team) NewCounter() *Counter { return &Counter{mon: t.mon} }

// NewP2P returns per-worker completion counters bound to this team's
// watchdog.
func (t *Team) NewP2P() *P2P { return newP2P(t.N, t.mon) }

// Run executes fn(w) on n concurrent workers and returns when all finish.
// A worker panic cancels the rest of the team (workers blocked in
// team-bound primitives unwind) and is returned as a *PanicError; a stall
// beyond the SetWatchdog deadline returns a *DeadlockError. A team that
// has failed must not be reused.
func (t *Team) Run(fn func(w int)) error {
	t.mon.gen.Store(t.gen.Add(1))
	return runWorkers(t.N, t.mon, fn)
}

// Barrier synchronizes all team workers and counts one barrier episode,
// unattributed to any sync site.
func (t *Team) Barrier(w int) { t.BarrierAt(w, -1) }

// BarrierAt is Barrier attributed to a 0-based sync-site id: the episode
// counts against the site's Stats slot and, when a recorder is bound, is
// recorded as an enter/exit span (Arg = the worker's episode number).
func (t *Team) BarrierAt(w, site int) {
	if w == 0 {
		t.Stats.Barriers.Add(1)
		t.Stats.SiteBarrier(site)
	}
	if rec := t.trace; rec != nil {
		start := rec.Now()
		t.barrier.Wait(w)
		t.eps[w].v++
		rec.Record(w, synctrace.EvBarrier, int32(site), t.eps[w].v, start)
		return
	}
	t.barrier.Wait(w)
}
