// Package spmdrt is the SPMD runtime substrate: worker teams executing a
// region function, barrier synchronization in three classic
// implementations (central sense-reversing, combining tree,
// dissemination), producer/consumer counters (§2.2 of the paper) and
// per-worker point-to-point completion counters for neighbor and pipeline
// synchronization. All primitives record dynamic synchronization counts so
// the benchmark harness can reproduce the paper's "barriers executed"
// tables exactly.
package spmdrt

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Stats counts dynamic synchronization events. A barrier crossed by all P
// workers counts as one executed barrier, matching the paper's metric.
type Stats struct {
	Barriers      atomic.Int64
	CounterIncrs  atomic.Int64
	CounterWaits  atomic.Int64
	NeighborWaits atomic.Int64
	Dispatches    atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		Barriers:      s.Barriers.Load(),
		CounterIncrs:  s.CounterIncrs.Load(),
		CounterWaits:  s.CounterWaits.Load(),
		NeighborWaits: s.NeighborWaits.Load(),
		Dispatches:    s.Dispatches.Load(),
	}
}

// StatsSnapshot is an immutable copy of Stats.
type StatsSnapshot struct {
	Barriers      int64
	CounterIncrs  int64
	CounterWaits  int64
	NeighborWaits int64
	Dispatches    int64
}

func (s StatsSnapshot) String() string {
	return fmt.Sprintf("barriers=%d counters(incr=%d,wait=%d) neighbor-waits=%d dispatches=%d",
		s.Barriers, s.CounterIncrs, s.CounterWaits, s.NeighborWaits, s.Dispatches)
}

// BarrierKind selects a barrier implementation.
type BarrierKind int

const (
	// Central is a sense-reversing barrier on one atomic counter; O(P)
	// contention on a single cache line.
	Central BarrierKind = iota
	// Tree is a combining-tree barrier of arity 4 with a global release.
	Tree
	// Dissemination runs ceil(log2 P) rounds of pairwise signaling.
	Dissemination
)

func (k BarrierKind) String() string {
	switch k {
	case Central:
		return "central"
	case Tree:
		return "tree"
	case Dissemination:
		return "dissemination"
	default:
		return fmt.Sprintf("BarrierKind(%d)", int(k))
	}
}

// Barrier is a reusable P-worker barrier.
type Barrier interface {
	// Wait blocks worker w until all workers of the team arrive.
	Wait(w int)
}

// spinThenYield busy-waits briefly, then yields to the scheduler, so teams
// larger than GOMAXPROCS cannot livelock.
func spinThenYield(done func() bool) {
	for i := 0; i < 64; i++ {
		if done() {
			return
		}
	}
	for !done() {
		runtime.Gosched()
	}
}

type pad [120]byte

// centralBarrier is the classic sense-reversing centralized barrier.
type centralBarrier struct {
	n     int
	count atomic.Int64
	sense atomic.Int64
	_     pad
	local []paddedInt
}

type paddedInt struct {
	v int64
	_ pad
}

// NewBarrier constructs a barrier of the given kind for n workers.
func NewBarrier(kind BarrierKind, n int) Barrier {
	if n <= 0 {
		panic("spmdrt: barrier needs at least one worker")
	}
	switch kind {
	case Tree:
		return newTreeBarrier(n)
	case Dissemination:
		return newDisseminationBarrier(n)
	default:
		return &centralBarrier{n: n, local: make([]paddedInt, n)}
	}
}

func (b *centralBarrier) Wait(w int) {
	mySense := 1 - b.local[w].v
	b.local[w].v = mySense
	if b.count.Add(1) == int64(b.n) {
		b.count.Store(0)
		b.sense.Store(mySense)
		return
	}
	spinThenYield(func() bool { return b.sense.Load() == mySense })
}

// treeBarrier: workers combine arrivals up a static arity-4 tree; the root
// flips a global release sense.
type treeBarrier struct {
	n       int
	nodes   []treeNode
	release atomic.Int64
	local   []paddedInt
}

type treeNode struct {
	parent   int // -1 at root
	expected int64
	count    atomic.Int64
	_        pad
}

const treeArity = 4

func newTreeBarrier(n int) *treeBarrier {
	// Leaf i = worker i; internal nodes above. Build an array-encoded
	// arity-4 tree over n leaves.
	b := &treeBarrier{n: n, local: make([]paddedInt, n)}
	// Simple construction: nodes[0..n-1] are leaves; repeatedly group.
	type level struct{ first, count int }
	b.nodes = make([]treeNode, 0, 2*n)
	for i := 0; i < n; i++ {
		b.nodes = append(b.nodes, treeNode{parent: -1})
	}
	cur := level{0, n}
	for cur.count > 1 {
		parents := (cur.count + treeArity - 1) / treeArity
		firstParent := len(b.nodes)
		for p := 0; p < parents; p++ {
			kids := treeArity
			if p == parents-1 {
				kids = cur.count - p*treeArity
			}
			b.nodes = append(b.nodes, treeNode{parent: -1, expected: int64(kids)})
			for c := 0; c < kids; c++ {
				b.nodes[cur.first+p*treeArity+c].parent = firstParent + p
			}
		}
		cur = level{firstParent, parents}
	}
	return b
}

func (b *treeBarrier) Wait(w int) {
	mySense := 1 - b.local[w].v
	b.local[w].v = mySense
	// Propagate arrival upward; the last arriver at each node continues.
	node := b.nodes[w].parent
	for node != -1 {
		nd := &b.nodes[node]
		if nd.count.Add(1) != nd.expected {
			break
		}
		nd.count.Store(0)
		node = nd.parent
		if node == -1 {
			b.release.Store(mySense)
			return
		}
	}
	if b.n == 1 {
		b.release.Store(mySense)
		return
	}
	spinThenYield(func() bool { return b.release.Load() == mySense })
}

// disseminationBarrier: round r has worker w signal (w + 2^r) mod n and
// wait for a signal from (w - 2^r) mod n; after ceil(log2 n) rounds all
// workers have transitively heard from everyone.
type disseminationBarrier struct {
	n      int
	rounds int
	// flags[r][w] counts signals received by worker w in round r.
	flags [][]paddedAtomic
	// epoch per worker distinguishes reuse.
	epoch []paddedInt
}

type paddedAtomic struct {
	v atomic.Int64
	_ pad
}

func newDisseminationBarrier(n int) *disseminationBarrier {
	rounds := 0
	for 1<<rounds < n {
		rounds++
	}
	b := &disseminationBarrier{n: n, rounds: rounds, epoch: make([]paddedInt, n)}
	b.flags = make([][]paddedAtomic, rounds)
	for r := range b.flags {
		b.flags[r] = make([]paddedAtomic, n)
	}
	return b
}

func (b *disseminationBarrier) Wait(w int) {
	b.epoch[w].v++
	target := b.epoch[w].v
	for r := 0; r < b.rounds; r++ {
		peer := (w + (1 << r)) % b.n
		b.flags[r][peer].v.Add(1)
		me := &b.flags[r][w].v
		spinThenYield(func() bool { return me.Load() >= target })
	}
}

// Counter is a monotonic producer/consumer counter ("Processors defining
// values can increment a counter, and processors accessing the values wait
// until the counter is incremented to the proper value", §2.2).
type Counter struct {
	v  atomic.Int64
	mu sync.Mutex
	cv *sync.Cond
}

// NewCounter returns a counter starting at zero.
func NewCounter() *Counter {
	c := &Counter{}
	c.cv = sync.NewCond(&c.mu)
	return c
}

// Add increments the counter by d and wakes waiters.
func (c *Counter) Add(d int64) {
	c.mu.Lock()
	c.v.Add(d)
	c.cv.Broadcast()
	c.mu.Unlock()
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// WaitGE blocks until the counter value is at least target.
func (c *Counter) WaitGE(target int64) {
	for i := 0; i < 64; i++ {
		if c.v.Load() >= target {
			return
		}
	}
	c.mu.Lock()
	for c.v.Load() < target {
		c.cv.Wait()
	}
	c.mu.Unlock()
}

// P2P provides per-worker monotonic completion counters for neighbor and
// pipeline synchronization: worker w posts its own progress; any worker
// may wait for another worker's progress to reach a value.
type P2P struct {
	slots []*Counter
}

// NewP2P builds completion counters for n workers.
func NewP2P(n int) *P2P {
	p := &P2P{slots: make([]*Counter, n)}
	for i := range p.slots {
		p.slots[i] = NewCounter()
	}
	return p
}

// Post records that worker w completed one more step.
func (p *P2P) Post(w int) { p.slots[w].Add(1) }

// WaitFor blocks until worker w has posted at least value steps.
func (p *P2P) WaitFor(w int, value int64) { p.slots[w].WaitGE(value) }

// Progress returns worker w's posted count.
func (p *P2P) Progress(w int) int64 { return p.slots[w].Load() }

// Team runs SPMD region functions on n workers.
type Team struct {
	N       int
	Stats   *Stats
	barrier Barrier
	kind    BarrierKind
}

// NewTeam creates a team of n workers using the given barrier kind.
func NewTeam(n int, kind BarrierKind) *Team {
	if n <= 0 {
		panic("spmdrt: team needs at least one worker")
	}
	return &Team{N: n, Stats: &Stats{}, barrier: NewBarrier(kind, n), kind: kind}
}

// BarrierKind returns the team's barrier implementation kind.
func (t *Team) BarrierKind() BarrierKind { return t.kind }

// Run executes fn(w) on n concurrent workers and returns when all finish.
func (t *Team) Run(fn func(w int)) {
	var wg sync.WaitGroup
	wg.Add(t.N)
	for w := 0; w < t.N; w++ {
		go func(w int) {
			defer wg.Done()
			fn(w)
		}(w)
	}
	wg.Wait()
}

// Barrier synchronizes all team workers and counts one barrier episode.
func (t *Team) Barrier(w int) {
	if w == 0 {
		t.Stats.Barriers.Add(1)
	}
	t.barrier.Wait(w)
}
