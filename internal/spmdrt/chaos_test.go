package spmdrt

import (
	"testing"
)

func TestChaosDeterministicDecisions(t *testing.T) {
	// Two layers built from the same seed must make identical perturbation
	// decisions per worker, regardless of wall-clock timing.
	a := NewChaos(42, 4)
	b := NewChaos(42, 4)
	if a.SlowWorker() != b.SlowWorker() {
		t.Fatalf("slow worker differs: %d vs %d", a.SlowWorker(), b.SlowWorker())
	}
	for w := 0; w < 4; w++ {
		for i := 0; i < 200; i++ {
			ca, cb := a.perturb(w), b.perturb(w)
			if ca != cb {
				t.Fatalf("worker %d decision %d differs: %d vs %d", w, i, ca, cb)
			}
		}
	}
}

func TestChaosSeedsDiffer(t *testing.T) {
	a := NewChaos(1, 4)
	b := NewChaos(2, 4)
	same := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if a.perturb(0) == b.perturb(0) {
			same++
		}
	}
	if same == trials {
		t.Error("seeds 1 and 2 produced identical decision streams")
	}
}

func TestChaosWorkerStreamsDiffer(t *testing.T) {
	c := NewChaos(7, 2)
	same := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		if c.perturb(0) == c.perturb(1) {
			same++
		}
	}
	if same == trials {
		t.Error("workers 0 and 1 share a decision stream")
	}
}

func TestChaosNilSafe(t *testing.T) {
	var c *Chaos
	c.PreSync(0)
	c.PostSync(3)
	if c.SlowWorker() != -1 {
		t.Errorf("nil SlowWorker() = %d, want -1", c.SlowWorker())
	}
}

func TestChaosSlowWorkerInRange(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		c := NewChaos(seed, 5)
		if s := c.SlowWorker(); s < 0 || s >= 5 {
			t.Errorf("seed %d: slow worker %d out of range", seed, s)
		}
	}
}

func TestChaosUnderTeam(t *testing.T) {
	// Chaos perturbation around every sync must never break barrier
	// semantics — this is the primitive-level version of the e2e chaos runs.
	c := NewChaos(99, 6)
	testBarrierChaos := func(kind BarrierKind) {
		team := NewTeam(6, kind)
		slots := make([]paddedAtomic, 6)
		if err := team.Run(func(w int) {
			for r := int64(1); r <= 30; r++ {
				c.PreSync(w)
				slots[w].v.Store(r)
				team.Barrier(w)
				c.PostSync(w)
				for i := range slots {
					if slots[i].v.Load() < r {
						t.Errorf("%v: worker %d saw stale slot %d at round %d", kind, w, i, r)
					}
				}
				team.Barrier(w)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range []BarrierKind{Central, Tree, Dissemination} {
		testBarrierChaos(k)
	}
}
