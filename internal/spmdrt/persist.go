package spmdrt

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// PersistentTeam is a Team whose workers are spawned once and then parked
// at a rendezvous between runs instead of being joined: each Run hands a
// region function to the already-live workers over per-worker channels, so
// the per-run cost is a channel send and wake instead of N goroutine
// spawns plus a join. It is the unit the team pool (internal/pool) checks
// out, resets and parks.
//
// The failure contract matches Team.Run: a worker panic, watchdog deadlock
// or cancellation latches the monitor and Run returns the corresponding
// error after workers unwind (bounded by the same grace period). A
// persistent team whose latch has tripped is permanently failed — Run
// refuses it and ResetForReuse rejects it — because the latch releases
// blocked waiters exactly once; the pool quarantines such teams and
// rebuilds replacements instead of resuscitating them.
type PersistentTeam struct {
	t    *Team
	jobs []chan *teamJob

	mu     sync.Mutex
	closed bool
}

// teamJob is one dispatched run: every worker executes fn(w) once; the
// last worker to finish closes done.
type teamJob struct {
	fn        func(w int)
	remaining atomic.Int64
	done      chan struct{}
}

// NewPersistentTeam spawns n parked workers around a fresh Team of the
// given barrier kind. Callers must Close the team to release the workers.
func NewPersistentTeam(n int, kind BarrierKind) *PersistentTeam {
	pt := &PersistentTeam{t: NewTeam(n, kind), jobs: make([]chan *teamJob, n)}
	for w := 0; w < n; w++ {
		pt.jobs[w] = make(chan *teamJob, 1)
		go pt.parkLoop(w)
	}
	return pt
}

// Team exposes the underlying Team for setup (SetWatchdog, SetTrace,
// NewCounter, Stats) and for the region function's Barrier calls.
func (pt *PersistentTeam) Team() *Team { return pt.t }

// N returns the team size.
func (pt *PersistentTeam) N() int { return pt.t.N }

// Kind returns the barrier implementation kind.
func (pt *PersistentTeam) Kind() BarrierKind { return pt.t.kind }

// parkLoop is one worker's life: block on the job channel, run, repeat
// until the channel closes. A worker abandoned mid-job (grace timeout)
// finds the channel closed when it finally returns and exits cleanly, so
// closed persistent teams never leak workers permanently.
func (pt *PersistentTeam) parkLoop(w int) {
	for job := range pt.jobs[w] {
		pt.runOne(w, job)
	}
}

// runOne executes one worker's share of a job with the same panic
// contract as runWorkers: teamAbort unwinds are swallowed, real panics
// latch the monitor as a PanicError.
func (pt *PersistentTeam) runOne(w int, job *teamJob) {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(teamAbort); !ok {
				pt.t.mon.fail(&PanicError{Worker: w, Value: r, Stack: string(debug.Stack())})
			}
		}
		if job.remaining.Add(-1) == 0 {
			close(job.done)
		}
	}()
	job.fn(w)
}

// Run executes fn(w) on the parked workers and returns when all finish,
// with Team.Run's error contract. A closed or previously-failed team is
// refused without dispatching.
func (pt *PersistentTeam) Run(fn func(w int)) error {
	pt.mu.Lock()
	if pt.closed {
		pt.mu.Unlock()
		return errors.New("spmdrt: run on a closed persistent team")
	}
	mon := pt.t.mon
	if mon.failed.Load() {
		pt.mu.Unlock()
		// A pre-latched team (earlier failure, or cancellation racing the
		// checkout) returns its latched error rather than running: the
		// latch can release waiters only once, so a second run could hang.
		return mon.Err()
	}
	mon.gen.Store(pt.t.gen.Add(1))
	job := &teamJob{fn: fn, done: make(chan struct{})}
	job.remaining.Store(int64(pt.t.N))
	for _, ch := range pt.jobs {
		ch <- job
	}
	pt.mu.Unlock()
	select {
	case <-job.done:
	case <-mon.failedCh:
		select {
		case <-job.done:
		case <-time.After(unwindGrace):
		}
	}
	return mon.Err()
}

// ResetForReuse scrubs all cross-run state so the next checkout observes a
// factory-fresh team: stats totals and per-site attribution, the armed
// watchdog deadline, the bound trace recorder, per-worker episode counters
// and the barrier's internal sense/count/round state (the barrier is
// rebuilt outright — cheaper to reason about than unwinding three
// different algorithms' state machines). A failed or closed team is
// rejected; quarantine it instead.
func (pt *PersistentTeam) ResetForReuse() error {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed {
		return errors.New("spmdrt: reset of a closed persistent team")
	}
	t := pt.t
	if err := t.mon.Err(); err != nil {
		return fmt.Errorf("spmdrt: reset of a failed team: %w", err)
	}
	t.Stats.Reset()
	t.SetWatchdog(0)
	t.trace = nil
	for i := range t.eps {
		t.eps[i] = paddedInt{}
	}
	t.barrier = newBarrier(t.kind, t.N, t.mon)
	return nil
}

// VerifyClean audits the post-reset state: the failure latch must be
// untripped, every stats counter zero with no per-site residue, no worker
// registered at a monitor wait site, and no trace recorder bound. It is
// the pool's checkout-time guard against cross-run contamination.
func (pt *PersistentTeam) VerifyClean() error {
	t := pt.t
	if err := t.mon.Err(); err != nil {
		return fmt.Errorf("spmdrt: team failure latch tripped: %w", err)
	}
	if t.Stats.Residue() {
		// Build the full snapshot only on the failure path; the audit runs
		// on every pool release and must stay allocation-free when clean.
		return fmt.Errorf("spmdrt: stats residue after reset: %s", t.Stats.Snapshot())
	}
	for w := 0; w < t.N; w++ {
		if site := t.mon.sites[w].p.Load(); site != nil {
			return fmt.Errorf("spmdrt: worker %d still registered at wait site %s after reset", w, site.Prim)
		}
	}
	if t.trace != nil {
		return errors.New("spmdrt: trace recorder still bound after reset")
	}
	return nil
}

// Close releases the parked workers. Idempotent. Workers abandoned
// mid-job (a run that timed out past the unwind grace) exit when they
// eventually return and observe the closed channel.
func (pt *PersistentTeam) Close() {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if pt.closed {
		return
	}
	pt.closed = true
	for _, ch := range pt.jobs {
		close(ch)
	}
}
