package spmdrt

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/synctrace"
)

// TestPersistentTeamReuse drives many back-to-back runs on one parked
// team: every run must observe factory-fresh stats, and the generation id
// must increase monotonically across reuse.
func TestPersistentTeamReuse(t *testing.T) {
	const runs = 60
	pt := NewPersistentTeam(4, Central)
	defer pt.Close()
	team := pt.Team()
	for i := 0; i < runs; i++ {
		if err := pt.Run(func(w int) {
			team.Barrier(w)
			team.Barrier(w)
			team.Barrier(w)
		}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got := team.Generation(); got != int64(i+1) {
			t.Fatalf("run %d: generation = %d, want %d", i, got, i+1)
		}
		if got := team.Stats.Snapshot().Barriers; got != 3 {
			t.Fatalf("run %d: barriers = %d, want 3 (cross-run stat contamination)", i, got)
		}
		if err := pt.ResetForReuse(); err != nil {
			t.Fatalf("run %d: reset: %v", i, err)
		}
		if err := pt.VerifyClean(); err != nil {
			t.Fatalf("run %d: verify clean: %v", i, err)
		}
	}
}

// TestPersistentTeamResetScrubs arms every piece of per-run state the
// reset protocol must scrub — watchdog deadline, trace recorder, per-site
// stats — and checks a reset team audits clean.
func TestPersistentTeamResetScrubs(t *testing.T) {
	pt := NewPersistentTeam(3, Dissemination)
	defer pt.Close()
	team := pt.Team()
	team.SetWatchdog(time.Minute)
	rec := synctrace.New(3, 64)
	rec.AddSite("site 1")
	team.SetTrace(rec)
	team.Stats.InitSites(2)
	if err := pt.Run(func(w int) {
		team.BarrierAt(w, 0)
		team.BarrierAt(w, 1)
	}); err != nil {
		t.Fatalf("run: %v", err)
	}
	snap := team.Stats.Snapshot()
	if snap.Barriers != 2 || len(snap.PerSite) != 2 {
		t.Fatalf("pre-reset snapshot unexpected: %s", snap)
	}
	if err := pt.ResetForReuse(); err != nil {
		t.Fatalf("reset: %v", err)
	}
	if err := pt.VerifyClean(); err != nil {
		t.Fatalf("verify clean after traced+sited run: %v", err)
	}
	snap = team.Stats.Snapshot()
	if snap.Barriers != 0 || snap.PerSite != nil {
		t.Fatalf("post-reset snapshot not scrubbed: %s", snap)
	}
	// The next run must work with the rebuilt barrier and stay untraced:
	// the recorder keeps only the first run's 2 barriers x 3 workers.
	before := rec.Recorded()
	if err := pt.Run(func(w int) { team.Barrier(w) }); err != nil {
		t.Fatalf("post-reset run: %v", err)
	}
	if got := rec.Recorded(); got != before {
		t.Fatalf("post-reset run recorded into the unbound recorder: %d -> %d events", before, got)
	}
}

// TestPersistentTeamFailureIsTerminal: a panic latches the team; further
// runs and resets are refused (the pool quarantines such teams).
func TestPersistentTeamFailureIsTerminal(t *testing.T) {
	pt := NewPersistentTeam(4, Tree)
	defer pt.Close()
	team := pt.Team()
	err := pt.Run(func(w int) {
		if w == 2 {
			panic("boom")
		}
		team.Barrier(w)
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Worker != 2 {
		t.Fatalf("run error = %v, want PanicError from worker 2", err)
	}
	if err := pt.Run(func(w int) {}); err == nil {
		t.Fatal("second run on a failed team succeeded, want refusal")
	}
	if err := pt.ResetForReuse(); err == nil {
		t.Fatal("reset of a failed team succeeded, want refusal")
	}
}

// TestPersistentTeamWatchdogGeneration: a deadlock report from a reused
// team carries the generation of the run that tripped it.
func TestPersistentTeamWatchdogGeneration(t *testing.T) {
	pt := NewPersistentTeam(2, Central)
	defer pt.Close()
	team := pt.Team()
	for i := 0; i < 3; i++ {
		if err := pt.Run(func(w int) { team.Barrier(w) }); err != nil {
			t.Fatalf("warmup run %d: %v", i, err)
		}
		if err := pt.ResetForReuse(); err != nil {
			t.Fatalf("warmup reset %d: %v", i, err)
		}
	}
	team.SetWatchdog(30 * time.Millisecond)
	err := pt.Run(func(w int) {
		if w == 0 {
			team.Barrier(w) // w1 never arrives: stall
		}
	})
	var de *DeadlockError
	if !errors.As(err, &de) {
		t.Fatalf("run error = %v, want DeadlockError", err)
	}
	if de.Generation != 4 {
		t.Fatalf("DeadlockError.Generation = %d, want 4", de.Generation)
	}
	if !strings.Contains(de.Error(), "[gen 4]") {
		t.Fatalf("report text missing generation stamp: %q", de.Error())
	}
}

// TestRunNoGoroutineLeak is the guard for the Run completion-tracking fix:
// runs that return by panic propagation or watchdog abort with an
// abandoned compute-bound worker must not leave helper goroutines behind.
// Before the fix, every Run spawned a WaitGroup-waiter goroutine that
// outlived an abandoned run for as long as its slowest worker.
func TestRunNoGoroutineLeak(t *testing.T) {
	oldGrace := unwindGrace
	unwindGrace = 40 * time.Millisecond
	defer func() { unwindGrace = oldGrace }()

	baseline := runtime.NumGoroutine()
	const runs = 10
	var sleepers atomic.Int64
	for i := 0; i < runs; i++ {
		team := NewTeam(4, Central)
		team.SetWatchdog(10 * time.Millisecond)
		err := team.Run(func(w int) {
			if w == 3 {
				// Compute-bound straggler: unmonitored, abandoned past the
				// shortened grace, exits on its own well after Run returns.
				sleepers.Add(1)
				time.Sleep(150 * time.Millisecond)
				sleepers.Add(-1)
				return
			}
			team.Barrier(w)
		})
		var de *DeadlockError
		if !errors.As(err, &de) {
			t.Fatalf("run %d: error = %v, want DeadlockError", i, err)
		}
	}
	// Immediately after the abandoned runs, only the straggler workers may
	// remain; give the scheduler a moment for unwound workers to exit,
	// then require the count back at baseline plus live sleepers only.
	deadline := time.Now().Add(5 * time.Second)
	for {
		extra := runtime.NumGoroutine() - baseline - int(sleepers.Load())
		if extra <= 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d above baseline after %d abandoned runs", extra, runs)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// And once the stragglers finish, everything is gone.
	for {
		if runtime.NumGoroutine() <= baseline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after stragglers exited: %d above baseline",
				runtime.NumGoroutine()-baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPersistentTeamCloseReleasesWorkers: parked workers exit on Close.
func TestPersistentTeamCloseReleasesWorkers(t *testing.T) {
	baseline := runtime.NumGoroutine()
	pts := make([]*PersistentTeam, 0, 4)
	for i := 0; i < 4; i++ {
		pts = append(pts, NewPersistentTeam(4, Central))
	}
	for _, pt := range pts {
		team := pt.Team()
		if err := pt.Run(func(w int) { team.Barrier(w) }); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	for _, pt := range pts {
		pt.Close()
		pt.Close() // idempotent
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("parked workers leaked: %d goroutines above baseline",
				runtime.NumGoroutine()-baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
