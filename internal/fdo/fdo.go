// Package fdo is the feedback-directed re-optimization pass: it ingests a
// prior run's durable sync profile (internal/profile) and re-visits the
// static schedule's per-site decisions with measured cost priors in hand.
//
// The static pass (internal/syncopt) ranks primitives by a fixed cost
// ladder (none < neighbor < counter < inspector < barrier) and
// conservatively strengthens boundaries whose combined direct+earlier
// flows it cannot order with one cheap primitive. The feedback pass gets
// two things the static pass lacks: measured per-site wait distributions
// (which sites actually cost something), and an independent per-flow
// happens-before certifier (which mutations are actually safe). For every
// site whose measured wait justifies the attempt, it re-ranks the site's
// rejected-alternatives ladder by measured kind-cost priors, retries the
// cheaper primitives, and keeps the first candidate the certifier
// re-proves — or, symmetrically, strengthens a primitive that measured
// slower than a barrier would. Every flip records its profile evidence on
// the boundary (remarks.FDORemark) so `barrierc -fdo -remarks` explains
// itself.
//
// The package deliberately does not import the certifier: the caller
// injects a CheckFunc (internal/core builds one from certify.Analyze), so
// fdo stays a pure schedule→schedule transform and tests can inject
// permissive or rejecting checkers.
package fdo

import (
	"fmt"
	"sort"

	"repro/internal/comm"
	"repro/internal/profile"
	"repro/internal/remarks"
	"repro/internal/syncopt"
)

// CheckFunc reports whether a mutated schedule is provably safe. core
// wires this to an independent certify.Analysis re-check; a nil CheckFunc
// rejects every mutation (fail closed).
type CheckFunc func(*syncopt.Schedule) (bool, error)

// Options are the feedback pass's flip thresholds. The defaults encode
// hysteresis in both directions — weakenings must be predicted clearly
// profitable and promotions must be measured clearly pathological — so a
// second feedback iteration over the re-optimized schedule's own profile
// reaches a fixed point instead of oscillating.
type Options struct {
	// MinWaits is the minimum number of recorded blocking waits at a site
	// before its measurements are trusted (default 1).
	MinWaits int64
	// MinShare is the minimum fraction of whole-program wait a site must
	// carry before a weakening is attempted (default 0.01).
	MinShare float64
	// WeakenFactor gates weakening: the candidate's estimated per-op cost
	// must be below measured × WeakenFactor (default 0.75).
	WeakenFactor float64
	// PromoteFactor and PromoteShare gate strengthening: a non-barrier
	// site is promoted to a barrier only when its measured per-op wait is
	// at least PromoteFactor × the measured barrier cost prior (default 4)
	// AND its wait share is at least PromoteShare (default 0.25).
	PromoteFactor float64
	PromoteShare  float64
	// AlgoShare and AlgoContentionNS gate the barrier-algorithm
	// recommendation: the dominant barrier site must carry at least
	// AlgoShare of program wait (default 0.2) and its contention component
	// — (wait − arrival slack) per episode, the part a different barrier
	// algorithm can affect — must exceed AlgoContentionNS (default 20µs).
	AlgoShare        float64
	AlgoContentionNS int64
}

func (o Options) withDefaults() Options {
	if o.MinWaits == 0 {
		o.MinWaits = 1
	}
	if o.MinShare == 0 {
		o.MinShare = 0.01
	}
	if o.WeakenFactor == 0 {
		o.WeakenFactor = 0.75
	}
	if o.PromoteFactor == 0 {
		o.PromoteFactor = 4
	}
	if o.PromoteShare == 0 {
		o.PromoteShare = 0.25
	}
	if o.AlgoShare == 0 {
		o.AlgoShare = 0.2
	}
	if o.AlgoContentionNS == 0 {
		o.AlgoContentionNS = 20_000
	}
	return o
}

// Decision records one site-level outcome of the feedback pass, flips and
// rejections alike, in the order the pass visited them (descending
// measured wait, site id as tiebreak).
type Decision struct {
	Site int `json:"site"`
	// Action is "weaken", "promote", "algo", or "reject".
	Action string `json:"action"`
	// From/To are primitive spellings (remarks.Prim*); To is empty for
	// "algo" and "reject".
	From string `json:"from"`
	To   string `json:"to,omitempty"`
	// Reason justifies the action (or the rejection).
	Reason string `json:"reason"`
	// Prior is the measured evidence the decision cites.
	Prior remarks.ProfilePrior `json:"prior"`
	// PredictedSaveNS is the per-run wait saving the cost priors predict.
	PredictedSaveNS int64 `json:"predicted_save_ns,omitempty"`
	// Certified reports whether the certifier re-proved the mutation
	// (always true for kept flips; false on "reject" when certification
	// was the blocker).
	Certified bool `json:"certified"`
	// BarrierAlgo is the recommendation for "algo" decisions.
	BarrierAlgo string `json:"barrier_algo,omitempty"`
}

// Result is the feedback pass's outcome: the re-optimized schedule (a
// clone; the input schedule is untouched), the per-site decision log, and
// the run-wide barrier-algorithm recommendation ("" to keep the measured
// one).
type Result struct {
	Schedule  *syncopt.Schedule `json:"-"`
	Decisions []Decision        `json:"decisions,omitempty"`
	// Flips counts schedule-changing decisions (weaken + promote).
	Flips int `json:"flips"`
	// BarrierAlgo is the recommended barrier algorithm for re-runs, from
	// straggler/slack attribution at the dominant barrier site ("" when
	// the measured algorithm stands).
	BarrierAlgo string `json:"barrier_algo,omitempty"`
	// PredictedSaveNS sums the per-run savings predicted for all flips.
	PredictedSaveNS int64 `json:"predicted_save_ns,omitempty"`
}

// classFor maps a primitive spelling back to its sync class.
var classFor = map[string]comm.Class{
	remarks.PrimNone:      comm.ClassNone,
	remarks.PrimNeighbor:  comm.ClassNeighbor,
	remarks.PrimCounter:   comm.ClassCounter,
	remarks.PrimInspector: comm.ClassInspector,
	remarks.PrimBarrier:   comm.ClassBarrier,
}

// fallbackFraction estimates a candidate primitive's per-op cost as a
// fraction of the measured cost it would replace, used only when the
// profile has no measured sites of the candidate's kind. The fractions
// restate the static ladder in relative terms; measured priors override
// them whenever available — that override is the ladder "re-ranking".
var fallbackFraction = map[string]float64{
	remarks.PrimNone:      0,
	remarks.PrimNeighbor:  0.25,
	remarks.PrimCounter:   0.35,
	remarks.PrimInspector: 0.8,
}

// kindCosts builds the measured per-op cost prior for each primitive kind
// present in the profile: total blocking wait over total ops across that
// kind's sites. This is what re-ranks the rejected-alternatives ladder —
// a kind that measured expensive in this program loses its static rank.
func kindCosts(p *profile.Profile) map[string]float64 {
	ops := map[string]int64{}
	wait := map[string]int64{}
	for i := range p.Sites {
		s := &p.Sites[i]
		ops[s.Kind] += s.Ops
		wait[s.Kind] += s.Wait.SumNS
	}
	out := map[string]float64{}
	for k, o := range ops {
		if o > 0 {
			out[k] = float64(wait[k]) / float64(o)
		}
	}
	return out
}

// prior distills one site's measured record into the evidence a decision
// cites.
func prior(p *profile.Profile, s *profile.SiteProfile, totalWaitNS int64) remarks.ProfilePrior {
	pr := remarks.ProfilePrior{
		Runs:   p.Runs,
		Waits:  s.Wait.Count,
		MeanNS: int64(s.Wait.Mean()),
		P50NS:  int64(s.Wait.Quantile(0.5)),
		P99NS:  int64(s.Wait.Quantile(0.99)),
	}
	if p.Runs > 0 {
		pr.Ops = s.Ops / int64(p.Runs)
	}
	if totalWaitNS > 0 {
		pr.Share = float64(s.Wait.SumNS) / float64(totalWaitNS)
	}
	if s.Episodes > 0 && s.Wait.SumNS > 0 {
		slack := s.SlackSumNS
		if slack > s.Wait.SumNS {
			slack = s.Wait.SumNS
		}
		pr.SlackShare = float64(slack) / float64(s.Wait.SumNS)
	}
	if w, share, ok := s.Straggler(); ok {
		pr.Straggler, pr.StragglerShare = w, share
	}
	return pr
}

// candidates returns the primitives to retry at a site, cheapest estimated
// cost first: the site's rejected-alternatives ladder (every primitive the
// static pass tried and gave up on) restricted to the ones a feedback flip
// can express without new static analysis — "none" (drop the sync) and
// "counter" (produce-consume counter; needs no wait directions or scan
// pairs). The order comes from the measured kind-cost priors, not the
// static ladder.
func candidates(sy *syncopt.Sync, costs map[string]float64, siteCost float64) []string {
	from := sy.Class.String()
	rej := remarks.MergeRejected(sy.Deps, sy.Rejected, from)
	var out []string
	for _, a := range rej {
		if a.Primitive == remarks.PrimNone || a.Primitive == remarks.PrimCounter {
			out = append(out, a.Primitive)
		}
	}
	// A barrier placed with no rejection ladder (e.g. a conservative
	// strengthening that recorded its reasons as deps only) still gets the
	// expressible candidates.
	if len(out) == 0 && sy.Class == comm.ClassBarrier {
		out = []string{remarks.PrimNone, remarks.PrimCounter}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return estCost(out[i], costs, siteCost) < estCost(out[j], costs, siteCost)
	})
	return out
}

// estCost is a candidate kind's estimated per-op cost at a site whose
// current primitive measured siteCost. Two estimates compete, and both
// are upper bounds, so the smaller wins. The measured kind prior bundles
// producer slack with primitive overhead — a consumer blocked on a
// counter is usually waiting out the producer's compute, not the
// increment — so carrying it to another site overstates what the
// primitive itself would cost there. The structural fallback fraction is
// blind to measured evidence but does scale with this site's own cost.
// Taking the min means either kind of evidence can argue a flip; the
// hysteresis gate, the rendezvous damper and the certifier remain the
// brakes, and the promote path separately handles primitives that
// measure pathologically slow in place.
func estCost(kind string, costs map[string]float64, siteCost float64) float64 {
	est := fallbackFraction[kind] * siteCost
	if c, ok := costs[kind]; ok && c < est {
		est = c
	}
	return est
}

// rendezvousBound reports whether every recorded dependence at a barrier
// site individually requires the full barrier (e.g. replicated reads of a
// parallel write, or incomparable iteration spaces). At such a site the
// all-to-all rendezvous IS the ordering requirement: a produce-consume
// counter substituting for it must couple the same producer and consumer
// sets, so it re-creates the rendezvous and merely swaps the primitive
// constant. No cost prior argues otherwise: the static fallback fraction
// prices the counter at a fixed discount regardless of structure, and a
// counter cost measured elsewhere in the program was measured at a site
// with sparser coupling — that sparseness is why it was cheap — so
// neither transfers to a site whose coupling is the full rendezvous. The
// weaken path therefore refuses counter flips here unconditionally. A
// barrier whose deps are individually weaker (none/neighbor/counter/
// inspector) earned its strength only from the conservative combination
// rule — exactly the over-strengthening feedback can recover — and is
// never damped.
func rendezvousBound(sy *syncopt.Sync) bool {
	if sy.Class != comm.ClassBarrier || len(sy.Deps) == 0 {
		return false
	}
	for _, d := range sy.Deps {
		if d.Class != remarks.PrimBarrier {
			return false
		}
	}
	return true
}

// Reoptimize runs the feedback pass: sched is the statically-built
// schedule the profile measured (the caller has already verified identity
// hashes), prof its merged profile, check the certifier closure. The
// returned Result holds a re-optimized clone; sched itself is never
// mutated. The pass is deterministic: sites are visited in descending
// measured-wait order (site id as tiebreak), candidates in estimated-cost
// order, and no map iteration order leaks into decisions.
func Reoptimize(sched *syncopt.Schedule, prof *profile.Profile, check CheckFunc, opt Options) (*Result, error) {
	if sched == nil || prof == nil {
		return nil, fmt.Errorf("fdo: nil schedule or profile")
	}
	if check == nil {
		check = func(*syncopt.Schedule) (bool, error) { return false, nil }
	}
	opt = opt.withDefaults()

	out := sched.Clone()
	bounds := out.Boundaries()
	res := &Result{Schedule: out}

	var totalWaitNS int64
	for i := range prof.Sites {
		totalWaitNS += prof.Sites[i].Wait.SumNS
	}
	costs := kindCosts(prof)

	// Visit order: descending measured wait, ascending site id.
	order := make([]int, 0, len(prof.Sites))
	for i := range prof.Sites {
		order = append(order, i)
	}
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := &prof.Sites[order[a]], &prof.Sites[order[b]]
		if sa.Wait.SumNS != sb.Wait.SumNS {
			return sa.Wait.SumNS > sb.Wait.SumNS
		}
		return sa.Site < sb.Site
	})

	barrierCost, hasBarrierCost := costs[remarks.PrimBarrier]

	for _, idx := range order {
		sp := &prof.Sites[idx]
		if sp.Site < 1 || sp.Site > len(bounds) {
			return nil, fmt.Errorf("fdo: profile site %d outside schedule's %d sites (stale profile?)", sp.Site, len(bounds))
		}
		sy := bounds[sp.Site-1]
		from := sy.Class.String()
		if sp.Kind != from {
			return nil, fmt.Errorf("fdo: profile site %d measured %q but schedule has %q (stale profile?)", sp.Site, sp.Kind, from)
		}
		if sy.Class == comm.ClassNone || sp.Wait.Count < opt.MinWaits || sp.Ops == 0 {
			continue
		}
		pr := prior(prof, sp, totalWaitNS)
		siteCost := float64(sp.Wait.SumNS) / float64(sp.Ops)

		// Strengthen a primitive that measured pathologically slow: its
		// per-op wait dwarfs what a barrier costs in this same program.
		// A barrier orders everything, so certification cannot fail, but
		// the check still runs (fail closed on a buggy checker).
		if sy.Class != comm.ClassBarrier && hasBarrierCost &&
			pr.Share >= opt.PromoteShare && siteCost >= opt.PromoteFactor*barrierCost {
			old := *sy
			sy.Class = comm.ClassBarrier
			sy.WaitLower, sy.WaitUpper = false, false
			if ok, err := check(out); err != nil {
				return nil, fmt.Errorf("fdo: certifier on site %d promote: %w", sp.Site, err)
			} else if ok {
				reason := fmt.Sprintf("measured %.0fns/op, %.1f× the %.0fns/op barrier prior at %.0f%% of program wait",
					siteCost, siteCost/barrierCost, barrierCost, pr.Share*100)
				save := int64((siteCost - barrierCost) * float64(pr.Ops))
				sy.FDO = &remarks.FDORemark{From: from, Action: "promote", Reason: reason,
					Prior: pr, PredictedSaveNS: save}
				res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "promote",
					From: from, To: remarks.PrimBarrier, Reason: reason, Prior: pr,
					PredictedSaveNS: save, Certified: true})
				res.Flips++
				res.PredictedSaveNS += save
				continue
			}
			*sy = old
		}

		// Weaken: retry the rejected-alternatives ladder, re-ranked by
		// measured kind costs, keeping the first candidate the certifier
		// re-proves whose estimated cost clears the hysteresis gate.
		if pr.Share < opt.MinShare {
			continue
		}
		flipped := false
		bound := rendezvousBound(sy)
		for _, cand := range candidates(sy, costs, siteCost) {
			est := estCost(cand, costs, siteCost)
			if bound && cand == remarks.PrimCounter {
				res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "reject",
					From: from, To: cand, Prior: pr, Certified: false,
					Reason: "every flow at this site individually requires the full rendezvous; a counter here must couple the same producer and consumer sets, so no prior measured at a sparser site argues a discount"})
				continue
			}
			if est >= siteCost*opt.WeakenFactor {
				res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "reject",
					From: from, To: cand, Prior: pr, Certified: false,
					Reason: fmt.Sprintf("estimated %.0fns/op for %s does not clear %.0fns/op measured × %.2f",
						est, cand, siteCost, opt.WeakenFactor)})
				continue
			}
			old := *sy
			sy.Class = classFor[cand]
			sy.WaitLower, sy.WaitUpper = false, false
			ok, err := check(out)
			if err != nil {
				return nil, fmt.Errorf("fdo: certifier on site %d -> %s: %w", sp.Site, cand, err)
			}
			if !ok {
				*sy = old
				res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "reject",
					From: from, To: cand, Prior: pr, Certified: false,
					Reason: fmt.Sprintf("certifier refused %s: an unordered cross-processor flow remains", cand)})
				continue
			}
			save := int64((siteCost - est) * float64(pr.Ops))
			reason := fmt.Sprintf("certified %s at estimated %.0fns/op vs %.0fns/op measured (%.0f%% of program wait)",
				cand, est, siteCost, pr.Share*100)
			sy.FDO = &remarks.FDORemark{From: from, Action: "weaken", Reason: reason,
				Prior: pr, PredictedSaveNS: save}
			res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "weaken",
				From: from, To: cand, Reason: reason, Prior: pr,
				PredictedSaveNS: save, Certified: true})
			res.Flips++
			res.PredictedSaveNS += save
			flipped = true
			break
		}
		if flipped {
			continue
		}
	}

	res.BarrierAlgo, _ = recommendAlgo(prof, bounds, opt, totalWaitNS, res)
	return res, nil
}

// recommendAlgo derives the run-wide barrier-algorithm recommendation from
// straggler/slack attribution at the dominant surviving barrier site. The
// runtime has one barrier implementation per team, so the recommendation
// is run-wide; the decision log records which site's attribution drove it.
// Slack-dominated waits are straggler-bound — every algorithm waits for
// the last arrival equally — so only the contention component,
// (wait − slack)/episode, argues for a different algorithm.
func recommendAlgo(prof *profile.Profile, bounds []*syncopt.Sync, opt Options, totalWaitNS int64, res *Result) (string, bool) {
	best := -1
	for i := range prof.Sites {
		sp := &prof.Sites[i]
		if sp.Kind != remarks.PrimBarrier || sp.Episodes == 0 {
			continue
		}
		if sp.Site >= 1 && sp.Site <= len(bounds) && bounds[sp.Site-1].Class != comm.ClassBarrier {
			continue // this site was weakened above; its attribution is moot
		}
		if best == -1 || sp.Wait.SumNS > prof.Sites[best].Wait.SumNS ||
			(sp.Wait.SumNS == prof.Sites[best].Wait.SumNS && sp.Site < prof.Sites[best].Site) {
			best = i
		}
	}
	if best == -1 {
		return "", false
	}
	sp := &prof.Sites[best]
	pr := prior(prof, sp, totalWaitNS)
	if pr.Share < opt.AlgoShare {
		return "", false
	}
	contention := (sp.Wait.SumNS - sp.SlackSumNS) / sp.Episodes
	if contention < opt.AlgoContentionNS {
		return "", false
	}
	algo := "tree"
	if prof.Workers >= 8 {
		algo = "dissemination"
	}
	if algo == prof.Barrier {
		return "", false
	}
	reason := fmt.Sprintf("site %d contention %.0fns/episode exceeds %.0fns with slack share %.0f%% at P=%d",
		sp.Site, float64(contention), float64(opt.AlgoContentionNS), pr.SlackShare*100, prof.Workers)
	sy := bounds[sp.Site-1]
	if sy.FDO == nil { // don't overwrite a flip record; algo only annotates untouched sites
		sy.FDO = &remarks.FDORemark{From: sp.Kind, Action: "algo", Reason: reason,
			Prior: pr, BarrierAlgo: algo}
	}
	res.Decisions = append(res.Decisions, Decision{Site: sp.Site, Action: "algo",
		From: sp.Kind, Reason: reason, Prior: pr, Certified: true, BarrierAlgo: algo})
	return algo, true
}
