package fdo

import (
	"strings"
	"testing"
	"time"

	"repro/internal/comm"
	"repro/internal/profile"
	"repro/internal/remarks"
	"repro/internal/syncopt"
)

// synthSched builds a three-boundary top-region schedule by hand:
// site 1 a barrier with a rejected-counter ladder, site 2 a counter,
// site 3 a barrier with no recorded alternatives.
func synthSched() *syncopt.Schedule {
	return &syncopt.Schedule{
		Top: &syncopt.RegionSched{
			Groups: []syncopt.Group{{}, {}, {}},
			After: []syncopt.Sync{
				{Class: comm.ClassBarrier,
					Rejected: []remarks.Alternative{{Primitive: remarks.PrimCounter, Reason: "earlier flows"}}},
				{Class: comm.ClassCounter},
				{Class: comm.ClassBarrier},
			},
		},
	}
}

// synthProfile measures the synthetic schedule: site 1 dominates the wait.
func synthProfile(sched *syncopt.Schedule) *profile.Profile {
	p := &profile.Profile{
		Schema: profile.Schema, Program: "synth",
		ProgramHash: "p:x", ScheduleHash: "s:x",
		Mode: "spmd", Workers: 4, Backend: "closure", Barrier: "central",
		Runs: 1, SpanNS: 10_000_000,
	}
	add := func(site int, kind string, ops int64, waits int, each time.Duration, episodes, slackNS int64) {
		sp := profile.SiteProfile{Site: site, Kind: kind, Ops: ops,
			Episodes: episodes, SlackSumNS: slackNS}
		for i := 0; i < waits; i++ {
			sp.Wait.Add(each)
		}
		p.Sites = append(p.Sites, sp)
	}
	add(1, "barrier", 4, 4, 2*time.Millisecond, 4, 1_000_000)
	add(2, "counter", 4, 4, 100*time.Microsecond, 0, 0)
	add(3, "barrier", 4, 4, 500*time.Microsecond, 4, 100_000)
	return p
}

func alwaysOK(*syncopt.Schedule) (bool, error) { return true, nil }
func alwaysNo(*syncopt.Schedule) (bool, error) { return false, nil }

func TestReoptimizeWeakens(t *testing.T) {
	sched := synthSched()
	prof := synthProfile(sched)
	res, err := Reoptimize(sched, prof, alwaysOK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips == 0 {
		t.Fatal("no flips with a permissive checker and a dominant barrier site")
	}
	b := res.Schedule.Boundaries()
	if b[0].Class != comm.ClassCounter {
		t.Fatalf("site 1 = %s, want counter (its ladder re-ranked by the measured counter prior)", b[0].Class)
	}
	if b[0].FDO == nil || b[0].FDO.Action != "weaken" || b[0].FDO.From != "barrier" {
		t.Fatalf("site 1 FDO remark = %+v, want weaken-from-barrier with evidence", b[0].FDO)
	}
	if b[0].FDO.Prior.Waits != 4 || b[0].FDO.Prior.P50NS == 0 {
		t.Fatalf("FDO remark lacks measured prior: %+v", b[0].FDO.Prior)
	}
	// The input schedule must be untouched.
	if sched.Top.After[0].Class != comm.ClassBarrier || sched.Top.After[0].FDO != nil {
		t.Fatal("Reoptimize mutated its input schedule")
	}
	// The measured counter prior (100µs/op at site 2) re-ranks the ladder:
	// the weaken reason must cite it, not the static fallback fraction.
	if !strings.Contains(b[0].FDO.Reason, "100000ns/op") {
		t.Fatalf("weaken reason %q does not cite the measured counter prior", b[0].FDO.Reason)
	}
}

func TestReoptimizeRespectsCertifier(t *testing.T) {
	sched := synthSched()
	prof := synthProfile(sched)
	res, err := Reoptimize(sched, prof, alwaysNo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatalf("%d flips past a rejecting certifier", res.Flips)
	}
	for _, b := range res.Schedule.Boundaries() {
		if b.FDO != nil && b.FDO.Action != "algo" {
			t.Fatalf("flip evidence on an unflipped site: %+v", b.FDO)
		}
	}
	// Rejections are still logged, with certified=false.
	sawReject := false
	for _, d := range res.Decisions {
		if d.Action == "reject" && !d.Certified {
			sawReject = true
		}
		if d.Action == "weaken" || d.Action == "promote" {
			t.Fatalf("schedule-changing decision past a rejecting certifier: %+v", d)
		}
	}
	if !sawReject {
		t.Fatal("no rejection decisions logged")
	}
}

func TestReoptimizeNilCheckFailsClosed(t *testing.T) {
	res, err := Reoptimize(synthSched(), synthProfile(nil), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flips != 0 {
		t.Fatal("nil CheckFunc must reject every mutation")
	}
}

func TestReoptimizePromotesMeasuredSlowPrimitive(t *testing.T) {
	sched := synthSched()
	p := &profile.Profile{
		Schema: profile.Schema, Program: "synth",
		ProgramHash: "p:x", ScheduleHash: "s:x",
		Mode: "spmd", Workers: 4, Backend: "closure", Barrier: "central",
		Runs: 1, SpanNS: 10_000_000,
	}
	// The counter at site 2 measures 10× the barrier prior and carries
	// most of the program's wait: the pass must strengthen it.
	s1 := profile.SiteProfile{Site: 1, Kind: "barrier", Ops: 4, Episodes: 4}
	s1.Wait.Add(100 * time.Microsecond)
	s2 := profile.SiteProfile{Site: 2, Kind: "counter", Ops: 4}
	for i := 0; i < 4; i++ {
		s2.Wait.Add(2 * time.Millisecond)
	}
	s3 := profile.SiteProfile{Site: 3, Kind: "barrier", Ops: 4, Episodes: 4}
	s3.Wait.Add(100 * time.Microsecond)
	p.Sites = []profile.SiteProfile{s1, s2, s3}

	res, err := Reoptimize(sched, p, alwaysOK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := res.Schedule.Boundaries()
	if b[1].Class != comm.ClassBarrier {
		t.Fatalf("site 2 = %s, want barrier (measured 10× the barrier prior)", b[1].Class)
	}
	if b[1].FDO == nil || b[1].FDO.Action != "promote" {
		t.Fatalf("site 2 FDO remark = %+v, want promote", b[1].FDO)
	}
}

func TestReoptimizeDeterministic(t *testing.T) {
	for i := 0; i < 5; i++ {
		a, err := Reoptimize(synthSched(), synthProfile(nil), alwaysOK, Options{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Reoptimize(synthSched(), synthProfile(nil), alwaysOK, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Decisions) != len(b.Decisions) {
			t.Fatalf("decision counts differ: %d vs %d", len(a.Decisions), len(b.Decisions))
		}
		for j := range a.Decisions {
			if a.Decisions[j] != b.Decisions[j] {
				t.Fatalf("decision %d differs:\n%+v\n%+v", j, a.Decisions[j], b.Decisions[j])
			}
		}
		if a.Flips != b.Flips || a.BarrierAlgo != b.BarrierAlgo || a.PredictedSaveNS != b.PredictedSaveNS {
			t.Fatal("result summaries differ between identical runs")
		}
	}
}

// TestReoptimizeRendezvousBound pins the structural damper: a barrier
// whose every dependence individually requires barrier strength is the
// rendezvous — no counter prior, fallback or measured at a sparser site,
// may argue a flip there, no matter how permissive the certifier is. A
// mixed-provenance barrier is never damped.
func TestReoptimizeRendezvousBound(t *testing.T) {
	allBarrierDeps := []remarks.Dependence{
		{Var: "s", Kind: "flow", Class: remarks.PrimBarrier},
		{Var: "s", Kind: "anti", Class: remarks.PrimBarrier},
	}
	// No measured counter anywhere: site 2's counter recorded no ops, so
	// the candidate estimate would be the fallback fraction — refused.
	sched := synthSched()
	sched.Top.After[0].Deps = allBarrierDeps
	prof := synthProfile(sched)
	prof.Sites[1].Ops = 0
	prof.Sites[1].Wait = profile.Sketch{}
	res, err := Reoptimize(sched, prof, alwaysOK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schedule.Boundaries()[0].Class; got != comm.ClassBarrier {
		t.Fatalf("site 1 = %s, want barrier kept (rendezvous-bound, fallback prior)", got)
	}
	sawBound := false
	for _, d := range res.Decisions {
		if d.Site == 1 && d.Action == "reject" && strings.Contains(d.Reason, "rendezvous") {
			sawBound = true
		}
	}
	if !sawBound {
		t.Fatalf("no rendezvous-bound rejection logged: %+v", res.Decisions)
	}

	// Same structure with a counter measured in-program: that prior came
	// from a sparser site, so it does not transfer — still refused.
	sched2 := synthSched()
	sched2.Top.After[0].Deps = allBarrierDeps
	res2, err := Reoptimize(sched2, synthProfile(sched2), alwaysOK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res2.Schedule.Boundaries()[0].Class; got != comm.ClassBarrier {
		t.Fatalf("site 1 = %s, want barrier kept (measured prior does not transfer to a rendezvous-bound site)", got)
	}

	// One weaker dependence in the mix and the damper stands down even on
	// a pure fallback estimate: the barrier came from the combination rule.
	sched3 := synthSched()
	sched3.Top.After[0].Deps = []remarks.Dependence{
		{Var: "s", Kind: "flow", Class: remarks.PrimBarrier},
		{Var: "t", Kind: "flow", Class: remarks.PrimCounter},
	}
	prof3 := synthProfile(sched3)
	prof3.Sites[1].Ops = 0
	prof3.Sites[1].Wait = profile.Sketch{}
	res3, err := Reoptimize(sched3, prof3, alwaysOK, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res3.Schedule.Boundaries()[0].Class; got != comm.ClassCounter {
		t.Fatalf("site 1 = %s, want counter (mixed deps, damper inactive)", got)
	}
}

func TestReoptimizeStaleProfileErrors(t *testing.T) {
	sched := synthSched()
	prof := synthProfile(sched)
	prof.Sites[0].Site = 99 // outside the schedule
	if _, err := Reoptimize(sched, prof, alwaysOK, Options{}); err == nil {
		t.Fatal("profile site outside the schedule must error")
	}
	prof = synthProfile(sched)
	prof.Sites[1].Kind = "barrier" // schedule has a counter there
	if _, err := Reoptimize(sched, prof, alwaysOK, Options{}); err == nil {
		t.Fatal("profile kind disagreeing with the schedule must error")
	}
}

// TestReoptimizeAlgoRecommendation pins the attribution rule: a dominant
// barrier site whose wait is contention (not arrival slack) argues for a
// non-central algorithm; a slack-dominated site does not.
func TestReoptimizeAlgoRecommendation(t *testing.T) {
	mk := func(slackNS int64) *profile.Profile {
		p := &profile.Profile{
			Schema: profile.Schema, Program: "synth",
			ProgramHash: "p:x", ScheduleHash: "s:x",
			Mode: "spmd", Workers: 8, Backend: "closure", Barrier: "central",
			Runs: 1, SpanNS: 10_000_000,
		}
		sp := profile.SiteProfile{Site: 3, Kind: "barrier", Ops: 4, Episodes: 4, SlackSumNS: slackNS}
		for i := 0; i < 4; i++ {
			sp.Wait.Add(time.Millisecond)
		}
		p.Sites = []profile.SiteProfile{sp}
		return p
	}
	// Contention-dominated (slack ~0): recommend dissemination at P=8.
	res, err := Reoptimize(synthSched(), mk(0), alwaysNo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BarrierAlgo != "dissemination" {
		t.Fatalf("BarrierAlgo = %q, want dissemination for contention-dominated P=8", res.BarrierAlgo)
	}
	// Slack-dominated: every algorithm waits for the straggler; keep central.
	res, err = Reoptimize(synthSched(), mk(4*time.Millisecond.Nanoseconds()), alwaysNo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BarrierAlgo != "" {
		t.Fatalf("BarrierAlgo = %q, want none for slack-dominated site", res.BarrierAlgo)
	}
}
