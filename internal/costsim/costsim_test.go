package costsim_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/costsim"
	"repro/internal/exec"
	"repro/internal/suite"
)

func compile(t *testing.T, name string) (*core.Compiled, map[string]int64) {
	t.Helper()
	k, err := suite.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	c, err := core.Compile(k.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c, k.Params
}

// TestSyncCountsMatchExecutor cross-validates the simulator against the
// real runtime: for the same schedule and P, the simulated numbers of
// barriers, counter increments and dispatches must equal the dynamic
// counts the executor records.
func TestSyncCountsMatchExecutor(t *testing.T) {
	for _, name := range []string{"jacobi1d", "tred2like", "dotchain", "mg2level", "lulike"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, params := compile(t, name)
			const P = 4
			sim, err := costsim.Simulate(c.Schedule, c.Plan, params, P, costsim.SPMD, costsim.SharedMemory())
			if err != nil {
				t.Fatal(err)
			}
			r, err := c.NewRunner(exec.Config{Workers: P, Params: params, Mode: exec.SPMD})
			if err != nil {
				t.Fatal(err)
			}
			res, err := r.Run()
			if err != nil {
				t.Fatal(err)
			}
			if sim.Barriers != res.Stats.Barriers {
				t.Errorf("barriers: sim %d, exec %d", sim.Barriers, res.Stats.Barriers)
			}
			if sim.CounterIncrs != res.Stats.CounterIncrs {
				t.Errorf("counter incrs: sim %d, exec %d", sim.CounterIncrs, res.Stats.CounterIncrs)
			}

			bsim, err := costsim.Simulate(c.Baseline, c.Plan, params, P, costsim.ForkJoin, costsim.SharedMemory())
			if err != nil {
				t.Fatal(err)
			}
			br, err := c.NewBaselineRunner(exec.Config{Workers: P, Params: params})
			if err != nil {
				t.Fatal(err)
			}
			bres, err := br.Run()
			if err != nil {
				t.Fatal(err)
			}
			if bsim.Barriers != bres.Stats.Barriers {
				t.Errorf("baseline barriers: sim %d, exec %d", bsim.Barriers, bres.Stats.Barriers)
			}
			if bsim.Dispatches != bres.Stats.Dispatches {
				t.Errorf("dispatches: sim %d, exec %d", bsim.Dispatches, bres.Stats.Dispatches)
			}
		})
	}
}

// TestWorkConservation: total computed work must not depend on P for SPMD
// (slices exactly tile the iteration space).
func TestWorkConservation(t *testing.T) {
	c, params := compile(t, "jacobi2d")
	var ref float64
	for _, p := range []int{1, 2, 4, 8, 16} {
		r, err := costsim.Simulate(c.Schedule, c.Plan, params, p, costsim.SPMD, costsim.SharedMemory())
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			ref = r.Work
			continue
		}
		if r.Work != ref {
			t.Errorf("P=%d: work %v != P=1 work %v", p, r.Work, ref)
		}
	}
}

// TestOptimizedBeatsBaseline: under 1995-style costs the optimized
// schedule must predict a shorter makespan than fork-join for
// communication-light kernels at P=8, and the gap must widen under
// software-DSM costs — the paper's central performance claim.
func TestOptimizedBeatsBaseline(t *testing.T) {
	for _, name := range []string{"jacobi1d", "shallow", "tred2like", "pipeline"} {
		name := name
		t.Run(name, func(t *testing.T) {
			c, params := compile(t, name)
			const P = 8
			shm := costsim.SharedMemory()
			dsm := costsim.SoftwareDSM()
			base, err := costsim.Simulate(c.Baseline, c.Plan, params, P, costsim.ForkJoin, shm)
			if err != nil {
				t.Fatal(err)
			}
			opt, err := costsim.Simulate(c.Schedule, c.Plan, params, P, costsim.SPMD, shm)
			if err != nil {
				t.Fatal(err)
			}
			if opt.Makespan >= base.Makespan {
				t.Errorf("shared-memory: optimized %v >= baseline %v", opt.Makespan, base.Makespan)
			}
			baseDSM, err := costsim.Simulate(c.Baseline, c.Plan, params, P, costsim.ForkJoin, dsm)
			if err != nil {
				t.Fatal(err)
			}
			optDSM, err := costsim.Simulate(c.Schedule, c.Plan, params, P, costsim.SPMD, dsm)
			if err != nil {
				t.Fatal(err)
			}
			gainSHM := base.Makespan / opt.Makespan
			gainDSM := baseDSM.Makespan / optDSM.Makespan
			if gainDSM <= gainSHM {
				t.Errorf("DSM gain %.3f should exceed shared-memory gain %.3f", gainDSM, gainSHM)
			}
		})
	}
}

// TestPipelineStagger: the pipeline kernel's loop-bottom neighbor sync
// must let the simulated SPMD version dramatically outrun a barrier-per-
// step baseline under DSM costs.
func TestPipelineStagger(t *testing.T) {
	c, params := compile(t, "pipeline")
	const P = 16
	base, err := costsim.Simulate(c.Baseline, c.Plan, params, P, costsim.ForkJoin, costsim.SoftwareDSM())
	if err != nil {
		t.Fatal(err)
	}
	opt, err := costsim.Simulate(c.Schedule, c.Plan, params, P, costsim.SPMD, costsim.SoftwareDSM())
	if err != nil {
		t.Fatal(err)
	}
	if opt.Makespan*2 > base.Makespan {
		t.Errorf("pipelining gain too small: base %v, opt %v", base.Makespan, opt.Makespan)
	}
}

// TestSpeedupGrowsWithP for an embarrassingly stencil kernel under the
// optimized schedule.
func TestSpeedupGrowsWithP(t *testing.T) {
	c, params := compile(t, "jacobi2d")
	prev := 0.0
	for _, p := range []int{1, 2, 4, 8} {
		r, err := costsim.Simulate(c.Schedule, c.Plan, params, p, costsim.SPMD, costsim.SharedMemory())
		if err != nil {
			t.Fatal(err)
		}
		sp := r.Speedup()
		if sp < prev {
			t.Errorf("P=%d: speedup %v dropped below %v", p, sp, prev)
		}
		prev = sp
	}
	if prev < 4 {
		t.Errorf("P=8 speedup %v too low for a stencil", prev)
	}
}

func TestSimulateValidation(t *testing.T) {
	c, params := compile(t, "jacobi1d")
	if _, err := costsim.Simulate(c.Schedule, c.Plan, params, 0, costsim.SPMD, costsim.SharedMemory()); err == nil {
		t.Error("P=0 accepted")
	}
	if _, err := costsim.Simulate(c.Schedule, c.Plan, nil, 4, costsim.SPMD, costsim.SharedMemory()); err == nil {
		t.Error("missing params accepted")
	}
}

// TestTraceStagger: a one-directional sweep (testdata/sweep.dsl shape)
// must show the pipelining wave: worker w's first compute segment starts
// strictly later than worker w-1's as the sweep fills.
func TestTraceStagger(t *testing.T) {
	// In-place recurrence on i makes the inner loop serial; the
	// partitioner turns it into a wavefront relay, and the enclosing k
	// loop pipelines it (paper §3.3).
	src := `
program erleb
param N, M
real A(N, M)
do k = 2, M
  do i = 2, N
    A(i, k) = 0.5 * (A(i - 1, k) + A(i, k - 1))
  end do
end do
end
`
	c, err := core.Compile(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	const P = 6
	params := map[string]int64{"N": 240, "M": 40}
	res, trace, err := costsim.SimulateTrace(c.Schedule, c.Plan, params, P, costsim.SPMD, costsim.SoftwareDSM())
	if err != nil {
		t.Fatal(err)
	}
	if res.Barriers != 0 {
		t.Fatalf("sweep should be barrier-free, got %d barriers", res.Barriers)
	}
	// Second compute segment per worker (first sweep step after the
	// pipeline is primed) must start monotonically later with rank.
	second := make([]float64, P)
	seen := make([]int, P)
	for _, seg := range trace {
		if seg.Kind == costsim.SegCompute && seen[seg.Worker] < 2 {
			seen[seg.Worker]++
			if seen[seg.Worker] == 2 {
				second[seg.Worker] = seg.Start
			}
		}
	}
	for w := 1; w < P; w++ {
		if second[w] <= second[w-1] {
			t.Errorf("no stagger: worker %d second compute at %v <= worker %d at %v",
				w, second[w], w-1, second[w-1])
		}
	}
}

// TestRenderGanttOutput sanity-checks the renderer.
func TestRenderGanttOutput(t *testing.T) {
	c, params := compile(t, "pipeline")
	res, trace, err := costsim.SimulateTrace(c.Schedule, c.Plan, params, 4, costsim.SPMD, costsim.SharedMemory())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	costsim.RenderGantt(&sb, res, trace, 4, 60)
	out := sb.String()
	if !strings.Contains(out, "w0 ") || !strings.Contains(out, "#") {
		t.Errorf("gantt output:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 5 {
		t.Errorf("expected header + 4 rows:\n%s", out)
	}
}
