// Package costsim predicts parallel execution time of a compiled program
// by simulating per-worker clocks over the synchronization schedule.
//
// The reproduction host exposes a single CPU, so the paper's elapsed-time
// results (measured on multiprocessor SGI hardware) cannot be observed
// directly; per DESIGN.md's substitution rule we simulate the substrate
// instead. Work is counted in abstract units (expression nodes executed),
// and synchronization costs are parameters — including a software-DSM
// preset, since the paper argues barrier elimination matters most there
// ("software barrier costs are dramatically higher", §1).
//
// The simulation is exact for this synchronization structure: each worker
// is sequential and blocks only at schedule boundaries, so propagating
// per-worker clocks through the sites in program order yields the same
// makespan a discrete-event simulation would. Pipelining emerges
// naturally: a loop-bottom neighbor sync lets low-ranked workers run ahead
// into later iterations, exactly the staggered wave of §3.3.
package costsim

import (
	"fmt"

	"repro/internal/comm"
	"repro/internal/decomp"
	"repro/internal/ir"
	"repro/internal/linear"
	"repro/internal/region"
	"repro/internal/syncopt"
)

// Costs parameterizes synchronization relative to one unit of computation
// (one expression node).
type Costs struct {
	// BarrierBase + BarrierPerP*P is the cost of one barrier episode.
	BarrierBase, BarrierPerP float64
	// CounterIncr/CounterWait: producer increment and consumer wait.
	CounterIncr, CounterWait float64
	// NeighborPost/NeighborWait: point-to-point post and wait.
	NeighborPost, NeighborWait float64
	// Dispatch is the fork-join master-to-team wakeup broadcast.
	Dispatch float64
}

// SharedMemory approximates a 1995 bus-based shared-memory machine
// (barriers of a few microseconds vs ~100ns ops).
func SharedMemory() Costs {
	return Costs{
		BarrierBase: 20, BarrierPerP: 10,
		CounterIncr: 3, CounterWait: 3,
		NeighborPost: 2, NeighborWait: 2,
		Dispatch: 20,
	}
}

// SoftwareDSM approximates a software distributed-shared-memory system,
// where barriers cost milliseconds (the paper's motivating case [12]).
func SoftwareDSM() Costs {
	return Costs{
		BarrierBase: 2000, BarrierPerP: 500,
		CounterIncr: 100, CounterWait: 100,
		NeighborPost: 80, NeighborWait: 80,
		Dispatch: 1000,
	}
}

// Mode mirrors exec.Mode without importing it.
type Mode int

const (
	// ForkJoin simulates the baseline: master executes sequential code,
	// dispatch + join barrier around every parallel loop.
	ForkJoin Mode = iota
	// SPMD simulates the optimized schedule.
	SPMD
)

// Result of one simulation.
type Result struct {
	// Makespan is the predicted parallel completion time.
	Makespan float64
	// Work is the total computation executed (equals the sequential
	// time when replication is zero).
	Work float64
	// SyncTime aggregates time charged to synchronization operations
	// (not idling).
	SyncTime float64
	// Barriers etc. count simulated synchronization events.
	Barriers, CounterIncrs, NeighborPosts, Dispatches int64
}

// Speedup returns Work/Makespan, the predicted speedup over an ideal
// sequential execution of the same work.
func (r Result) Speedup() float64 {
	if r.Makespan == 0 {
		return 1
	}
	return r.Work / r.Makespan
}

// Simulator predicts execution times for one compiled program.
type Simulator struct {
	prog   *ir.Program
	sched  *syncopt.Schedule
	plan   *decomp.Plan
	params map[string]int64
	costs  Costs
	nproc  int
	mode   Mode

	clocks []float64
	res    Result
	env    map[string]int64
	err    error
	// trace, when non-nil, records per-worker activity segments.
	trace *[]Segment
}

// Simulate runs the prediction. P must be positive; params must bind every
// program parameter.
func Simulate(sched *syncopt.Schedule, plan *decomp.Plan, params map[string]int64,
	nproc int, mode Mode, costs Costs) (Result, error) {
	if nproc <= 0 {
		return Result{}, fmt.Errorf("costsim: nproc must be positive")
	}
	s := &Simulator{
		prog: sched.Prog, sched: sched, plan: plan, params: params,
		costs: costs, nproc: nproc, mode: mode,
		clocks: make([]float64, nproc),
		env:    map[string]int64{},
	}
	for _, p := range sched.Prog.Params {
		if _, ok := params[p]; !ok {
			return Result{}, fmt.Errorf("costsim: parameter %s not bound", p)
		}
	}
	s.region(sched.Top)
	if s.err != nil {
		return Result{}, s.err
	}
	for _, c := range s.clocks {
		if c > s.res.Makespan {
			s.res.Makespan = c
		}
	}
	return s.res, nil
}

func (s *Simulator) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

func (s *Simulator) region(rs *syncopt.RegionSched) {
	for gi := range rs.Groups {
		if s.err != nil {
			return
		}
		for _, st := range rs.Groups[gi].Stmts {
			s.stmt(st)
		}
		s.sync(rs, gi)
	}
}

func (s *Simulator) stmt(st ir.Stmt) {
	switch s.sched.Modes[st] {
	case region.ModeParallel:
		l := st.(*ir.Loop)
		if s.mode == ForkJoin {
			// Master dispatches; workers begin no earlier than the
			// master's announcement.
			t := s.clocks[0] + s.costs.Dispatch
			s.res.Dispatches++
			s.res.SyncTime += s.costs.Dispatch
			for w := range s.clocks {
				if s.clocks[w] < t {
					s.clocks[w] = t
				}
			}
		}
		s.parallelLoop(l)
	case region.ModeReplicated:
		w := s.weightStmt(st)
		if s.mode == ForkJoin {
			s.segment(0, s.clocks[0], s.clocks[0]+w, SegCompute)
			s.clocks[0] += w
			s.res.Work += w
			return
		}
		for i := range s.clocks {
			s.segment(i, s.clocks[i], s.clocks[i]+w, SegCompute)
			s.clocks[i] += w
		}
		// Replication executes the same work P times; count it once
		// as useful work (the rest is overhead the model charges to
		// the clocks anyway).
		s.res.Work += w
	case region.ModeGuarded:
		w := s.weightStmt(st)
		s.segment(0, s.clocks[0], s.clocks[0]+w, SegCompute)
		s.clocks[0] += w
		s.res.Work += w
	case region.ModeWavefront:
		l := st.(*ir.Loop)
		if s.mode == ForkJoin {
			w := s.weightStmt(st)
			s.segment(0, s.clocks[0], s.clocks[0]+w, SegCompute)
			s.clocks[0] += w
			s.res.Work += w
			return
		}
		s.wavefront(l)
	case region.ModeSeqLoop:
		l := st.(*ir.Loop)
		lo, ok1 := s.evalInt(l.Lo)
		hi, ok2 := s.evalInt(l.Hi)
		if !ok1 || !ok2 {
			s.fail(fmt.Errorf("costsim: non-evaluable bounds of loop %s", l.Index))
			return
		}
		inner := s.sched.Regions[l]
		for k := lo; k <= hi && s.err == nil; k++ {
			s.env[l.Index] = k
			s.region(inner)
		}
		delete(s.env, l.Index)
	}
}

// wavefront simulates the relay: worker w starts its chunk no earlier than
// worker w-1 finishes its own, producing the staggered pipeline wave.
func (s *Simulator) wavefront(l *ir.Loop) {
	lo, ok1 := s.evalInt(l.Lo)
	hi, ok2 := s.evalInt(l.Hi)
	pl := s.plan.Placements[l]
	if !ok1 || !ok2 || pl == nil {
		s.fail(fmt.Errorf("costsim: non-evaluable wavefront loop %s", l.Index))
		return
	}
	off, ok1 := s.evalAffine(pl.Offset)
	ext, ok2 := s.evalAffine(pl.Space.Extent)
	if !ok1 || !ok2 {
		s.fail(fmt.Errorf("costsim: non-evaluable placement of wavefront loop %s", l.Index))
		return
	}
	prevFinish := 0.0
	for w := 0; w < s.nproc; w++ {
		start := s.clocks[w]
		if w > 0 {
			handoff := prevFinish + s.costs.NeighborWait
			if handoff > start {
				s.segment(w, start, handoff, SegNeighbor)
				start = handoff
			}
			s.res.SyncTime += s.costs.NeighborWait
		}
		var wsum float64
		if ext >= 1 && lo <= hi {
			st2, en, step := decomp.IterSlice(pl.Kind, lo, hi, off, ext, w, s.nproc)
			for i := st2; i <= en; i += step {
				s.env[l.Index] = i
				wsum += s.weightStmts(l.Body)
			}
			delete(s.env, l.Index)
		}
		s.segment(w, start, start+wsum, SegCompute)
		s.res.Work += wsum
		finish := start + wsum + s.costs.NeighborPost
		s.res.NeighborPosts++
		s.res.SyncTime += s.costs.NeighborPost
		s.clocks[w] = finish
		prevFinish = finish
	}
}

// parallelLoop charges each worker its slice of the iteration space.
func (s *Simulator) parallelLoop(l *ir.Loop) {
	lo, ok1 := s.evalInt(l.Lo)
	hi, ok2 := s.evalInt(l.Hi)
	if !ok1 || !ok2 {
		s.fail(fmt.Errorf("costsim: non-evaluable bounds of parallel loop %s", l.Index))
		return
	}
	pl := s.plan.Placements[l]
	if pl == nil {
		s.fail(fmt.Errorf("costsim: no placement for parallel loop %s", l.Index))
		return
	}
	off, ok1 := s.evalAffine(pl.Offset)
	ext, ok2 := s.evalAffine(pl.Space.Extent)
	if !ok1 || !ok2 {
		s.fail(fmt.Errorf("costsim: non-evaluable placement of loop %s", l.Index))
		return
	}
	for w := 0; w < s.nproc; w++ {
		if ext < 1 || lo > hi {
			continue
		}
		start, end, step := decomp.IterSlice(pl.Kind, lo, hi, off, ext, w, s.nproc)
		var wsum float64
		for i := start; i <= end; i += step {
			s.env[l.Index] = i
			wsum += s.weightStmts(l.Body)
		}
		delete(s.env, l.Index)
		s.segment(w, s.clocks[w], s.clocks[w]+wsum, SegCompute)
		s.clocks[w] += wsum
		s.res.Work += wsum
	}
}

// activeWorkers mirrors exec's groupActivity for counter targets.
func (s *Simulator) activeWorkers(g syncopt.Group) []bool {
	act := make([]bool, s.nproc)
	for _, st := range g.Stmts {
		switch s.sched.Modes[st] {
		case region.ModeParallel:
			l := st.(*ir.Loop)
			lo, ok1 := s.evalInt(l.Lo)
			hi, ok2 := s.evalInt(l.Hi)
			pl := s.plan.Placements[l]
			if !ok1 || !ok2 || pl == nil {
				for i := range act {
					act[i] = true
				}
				continue
			}
			off, ok1 := s.evalAffine(pl.Offset)
			ext, ok2 := s.evalAffine(pl.Space.Extent)
			if !ok1 || !ok2 || ext < 1 || lo > hi {
				continue
			}
			for w := 0; w < s.nproc; w++ {
				st2, en, _ := decomp.IterSlice(pl.Kind, lo, hi, off, ext, w, s.nproc)
				if st2 <= en {
					act[w] = true
				}
			}
		case region.ModeWavefront:
			for i := range act {
				act[i] = true
			}
		case region.ModeGuarded:
			act[0] = true
		case region.ModeSeqLoop:
			for i := range act {
				act[i] = true
			}
		}
	}
	return act
}

func (s *Simulator) sync(rs *syncopt.RegionSched, gi int) {
	sy := rs.After[gi]
	switch sy.Class {
	case comm.ClassNone:
	case comm.ClassBarrier:
		cost := s.costs.BarrierBase + s.costs.BarrierPerP*float64(s.nproc)
		tmax := 0.0
		for _, c := range s.clocks {
			if c > tmax {
				tmax = c
			}
		}
		for w := range s.clocks {
			s.segment(w, s.clocks[w], tmax+cost, SegBarrier)
			s.clocks[w] = tmax + cost
		}
		s.res.Barriers++
		s.res.SyncTime += cost
	case comm.ClassCounter:
		act := s.activeWorkers(rs.Groups[gi])
		tpost := 0.0
		for w, a := range act {
			if !a {
				continue
			}
			t := s.clocks[w] + s.costs.CounterIncr
			s.clocks[w] = t
			if t > tpost {
				tpost = t
			}
			s.res.CounterIncrs++
			s.res.SyncTime += s.costs.CounterIncr
		}
		for w := range s.clocks {
			t := tpost + s.costs.CounterWait
			if s.clocks[w] < t {
				s.segment(w, s.clocks[w], t, SegCounter)
				s.clocks[w] = t
			}
		}
		s.res.SyncTime += s.costs.CounterWait
	case comm.ClassNeighbor:
		posts := make([]float64, s.nproc)
		for w := range s.clocks {
			s.clocks[w] += s.costs.NeighborPost
			posts[w] = s.clocks[w]
			s.res.NeighborPosts++
			s.res.SyncTime += s.costs.NeighborPost
		}
		for w := range s.clocks {
			t := s.clocks[w]
			if sy.WaitLower && w > 0 && posts[w-1]+s.costs.NeighborWait > t {
				t = posts[w-1] + s.costs.NeighborWait
			}
			if sy.WaitUpper && w < s.nproc-1 && posts[w+1]+s.costs.NeighborWait > t {
				t = posts[w+1] + s.costs.NeighborWait
			}
			s.segment(w, s.clocks[w], t, SegNeighbor)
			s.clocks[w] = t
		}
	}
}

// weightStmt/weightStmts estimate computation in expression nodes under
// the current environment; If branches charge the heavier arm.
func (s *Simulator) weightStmts(stmts []ir.Stmt) float64 {
	var sum float64
	for _, st := range stmts {
		sum += s.weightStmt(st)
	}
	return sum
}

func (s *Simulator) weightStmt(st ir.Stmt) float64 {
	switch n := st.(type) {
	case *ir.Assign:
		return float64(exprNodes(n.LHS) + exprNodes(n.RHS))
	case *ir.If:
		thenW := s.weightStmts(n.Then)
		elseW := s.weightStmts(n.Else)
		if elseW > thenW {
			thenW = elseW
		}
		return float64(exprNodes(n.Cond)) + thenW
	case *ir.Loop:
		lo, ok1 := s.evalInt(n.Lo)
		hi, ok2 := s.evalInt(n.Hi)
		if !ok1 || !ok2 {
			return 0
		}
		var sum float64
		for i := lo; i <= hi; i++ {
			s.env[n.Index] = i
			sum += s.weightStmts(n.Body)
		}
		delete(s.env, n.Index)
		return sum + float64(hi-lo+1)
	default:
		return 0
	}
}

func exprNodes(e ir.Expr) int {
	n := 0
	ir.WalkExprs(e, func(ir.Expr) { n++ })
	return n
}

// evalInt evaluates integer expressions over parameters and bound loop
// indices (the only names loop bounds may reference).
func (s *Simulator) evalInt(e ir.Expr) (int64, bool) {
	switch n := e.(type) {
	case *ir.Num:
		if !n.IsInt {
			return 0, false
		}
		return n.Int, true
	case *ir.Ref:
		if n.IsArray() {
			return 0, false
		}
		if v, ok := s.env[n.Name]; ok {
			return v, true
		}
		if v, ok := s.params[n.Name]; ok {
			return v, true
		}
		return 0, false
	case *ir.Unary:
		if n.Op != '-' {
			return 0, false
		}
		v, ok := s.evalInt(n.X)
		return -v, ok
	case *ir.Bin:
		l, ok1 := s.evalInt(n.L)
		r, ok2 := s.evalInt(n.R)
		if !ok1 || !ok2 {
			return 0, false
		}
		switch n.Op {
		case ir.Add:
			return l + r, true
		case ir.Sub:
			return l - r, true
		case ir.Mul:
			return l * r, true
		case ir.Div:
			if r == 0 {
				return 0, false
			}
			q := l / r
			if l%r != 0 && (l < 0) != (r < 0) {
				q--
			}
			return q, true
		}
	}
	return 0, false
}

// evalAffine evaluates a placement affine over parameters and bound loop
// indices.
func (s *Simulator) evalAffine(a linear.Affine) (int64, bool) {
	v := a.Const
	for _, vr := range a.Vars() {
		var val int64
		switch vr.Kind {
		case linear.KindSymbolic:
			p, ok := s.params[vr.Name]
			if !ok {
				return 0, false
			}
			val = p
		case linear.KindLoop:
			i, ok := s.env[vr.Name]
			if !ok {
				return 0, false
			}
			val = i
		default:
			return 0, false
		}
		v += a.Coeff(vr) * val
	}
	return v, true
}
