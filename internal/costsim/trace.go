package costsim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/decomp"
	"repro/internal/syncopt"
)

// SegKind labels a traced time segment.
type SegKind byte

const (
	// SegCompute is useful computation.
	SegCompute SegKind = '#'
	// SegBarrier is time inside a barrier (arrival to release).
	SegBarrier SegKind = 'B'
	// SegCounter is counter increment/wait time.
	SegCounter SegKind = 'C'
	// SegNeighbor is point-to-point post/wait time.
	SegNeighbor SegKind = '.'
)

// Segment is one traced interval on one worker's clock.
type Segment struct {
	Worker     int
	Start, End float64
	Kind       SegKind
}

// SimulateTrace is Simulate plus a per-worker activity trace suitable for
// Gantt rendering.
func SimulateTrace(sched *syncopt.Schedule, plan *decomp.Plan, params map[string]int64,
	nproc int, mode Mode, costs Costs) (Result, []Segment, error) {
	if nproc <= 0 {
		return Result{}, nil, fmt.Errorf("costsim: nproc must be positive")
	}
	s := &Simulator{
		prog: sched.Prog, sched: sched, plan: plan, params: params,
		costs: costs, nproc: nproc, mode: mode,
		clocks: make([]float64, nproc),
		env:    map[string]int64{},
		trace:  &[]Segment{},
	}
	for _, p := range sched.Prog.Params {
		if _, ok := params[p]; !ok {
			return Result{}, nil, fmt.Errorf("costsim: parameter %s not bound", p)
		}
	}
	s.region(sched.Top)
	if s.err != nil {
		return Result{}, nil, s.err
	}
	for _, c := range s.clocks {
		if c > s.res.Makespan {
			s.res.Makespan = c
		}
	}
	return s.res, *s.trace, nil
}

func (s *Simulator) segment(w int, start, end float64, kind SegKind) {
	if s.trace == nil || end <= start {
		return
	}
	*s.trace = append(*s.trace, Segment{Worker: w, Start: start, End: end, Kind: kind})
}

// RenderGantt draws the trace as one text row per worker, quantized into
// cols columns over the makespan: '#' compute, 'B' barrier, 'C' counter,
// '.' neighbor sync, ' ' idle. Later segments overwrite earlier ones
// within a cell; sync marks win over compute so waits stay visible.
func RenderGantt(w io.Writer, res Result, trace []Segment, nproc, cols int) {
	if cols <= 0 {
		cols = 100
	}
	if res.Makespan <= 0 {
		fmt.Fprintln(w, "(empty trace)")
		return
	}
	rows := make([][]byte, nproc)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(" ", cols))
	}
	scale := float64(cols) / res.Makespan
	rank := func(k SegKind) int {
		switch k {
		case SegBarrier:
			return 3
		case SegCounter:
			return 2
		case SegNeighbor:
			return 2
		default:
			return 1
		}
	}
	cellRank := make([][]int, nproc)
	for i := range cellRank {
		cellRank[i] = make([]int, cols)
	}
	for _, seg := range trace {
		lo := int(seg.Start * scale)
		hi := int(seg.End * scale)
		if hi >= cols {
			hi = cols - 1
		}
		for c := lo; c <= hi; c++ {
			if rank(seg.Kind) >= cellRank[seg.Worker][c] {
				rows[seg.Worker][c] = byte(seg.Kind)
				cellRank[seg.Worker][c] = rank(seg.Kind)
			}
		}
	}
	fmt.Fprintf(w, "gantt: makespan %.0f units, '#'=compute 'B'=barrier 'C'=counter '.'=neighbor\n", res.Makespan)
	for i, r := range rows {
		fmt.Fprintf(w, "w%-2d |%s|\n", i, string(r))
	}
}
