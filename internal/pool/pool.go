// Package pool maintains persistent SPMD worker teams parked between
// runs, so back-to-back executions pay a channel wake instead of a full
// spawn/join cycle per run (ROADMAP item 3b, the runtime prerequisite for
// a long-lived serving process). Teams are checked out keyed by
// (workers, barrier kind) and tracked through a per-team health state
// machine:
//
//	Healthy ──release(err)──▶ Suspect ──probe fails──▶ Quarantined
//	   ▲                         │                          │
//	   └──────probe passes───────┘                async rebuild▼
//	                                                      Rebuilt ─▶ Healthy
//
// A clean release runs the checkout-scoped reset protocol
// (PersistentTeam.ResetForReuse + VerifyClean) so no run can observe a
// predecessor's stats, trace binding, watchdog deadline or barrier state.
// Any run failure — watchdog deadlock report, propagated panic,
// cancellation — quarantines the team outright (its failure latch is
// single-shot and cannot be rearmed safely) and triggers an asynchronous
// rebuild of a replacement, so one poisoned team never degrades the next
// checkout.
package pool

import (
	"expvar"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/spmdrt"
)

// Health is one pooled team's position in the health state machine.
type Health int32

const (
	// Healthy teams are parked and eligible for checkout.
	Healthy Health = iota
	// Suspect teams failed the reset protocol after a clean run and are
	// being probed (a trivial run plus a fresh reset) before readmission.
	Suspect
	// Quarantined teams are permanently out of service: their failure
	// latch tripped or they failed probing. They are closed and replaced.
	Quarantined
	// Rebuilt marks a replacement team freshly constructed for a
	// quarantined one, transitioning to Healthy as it parks.
	Rebuilt
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Quarantined:
		return "quarantined"
	case Rebuilt:
		return "rebuilt"
	default:
		return fmt.Sprintf("Health(%d)", int32(h))
	}
}

type key struct {
	workers int
	kind    spmdrt.BarrierKind
}

type entry struct {
	pt     *spmdrt.PersistentTeam
	health atomic.Int32
	runs   atomic.Int64
}

func (e *entry) setHealth(h Health) { e.health.Store(int32(h)) }

// Options tune a Pool.
type Options struct {
	// MaxIdlePerKey bounds the parked teams per (workers, kind) key;
	// surplus releases close the team instead of parking it (default 4).
	MaxIdlePerKey int
	// NoRebuild disables the asynchronous replacement of quarantined
	// teams, for tests that must account for every team exactly.
	NoRebuild bool
}

// Pool is a concurrency-safe pool of persistent teams. The zero value is
// not usable; construct with New.
type Pool struct {
	opts Options

	mu     sync.Mutex
	idle   map[key][]*entry
	closed bool

	rebuilds sync.WaitGroup
	pubOnce  sync.Once

	// Gauges (Snapshot / Publish).
	checkouts    atomic.Int64
	reuses       atomic.Int64
	coldBuilds   atomic.Int64
	releases     atomic.Int64
	resets       atomic.Int64
	suspects     atomic.Int64
	probes       atomic.Int64
	probeRescues atomic.Int64
	quarantines  atomic.Int64
	rebuilt      atomic.Int64
	live         atomic.Int64
}

// New builds an empty pool.
func New(opts Options) *Pool {
	if opts.MaxIdlePerKey <= 0 {
		opts.MaxIdlePerKey = 4
	}
	return &Pool{opts: opts, idle: map[key][]*entry{}}
}

// Checkout hands out a healthy parked team for the given shape, building
// one cold when none is parked. The caller must Release the lease exactly
// once, passing the run's error (nil for success).
func (p *Pool) Checkout(workers int, kind spmdrt.BarrierKind) (*Lease, error) {
	if workers < 1 {
		return nil, fmt.Errorf("pool: need at least one worker, got %d", workers)
	}
	k := key{workers: workers, kind: kind}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("pool: checkout from a closed pool")
	}
	p.checkouts.Add(1)
	if q := p.idle[k]; len(q) > 0 {
		e := q[len(q)-1]
		q[len(q)-1] = nil
		p.idle[k] = q[:len(q)-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		e.runs.Add(1)
		return &Lease{p: p, k: k, e: e}, nil
	}
	p.mu.Unlock()
	p.coldBuilds.Add(1)
	p.live.Add(1)
	e := &entry{pt: spmdrt.NewPersistentTeam(workers, kind)}
	e.runs.Add(1)
	return &Lease{p: p, k: k, e: e}, nil
}

// Lease is one checked-out team.
type Lease struct {
	p        *Pool
	k        key
	e        *entry
	released atomic.Bool
}

// Team returns the leased persistent team.
func (l *Lease) Team() *spmdrt.PersistentTeam { return l.e.pt }

// Health returns the leased team's current health state.
func (l *Lease) Health() Health { return Health(l.e.health.Load()) }

// Runs returns how many times this team has been checked out.
func (l *Lease) Runs() int64 { return l.e.runs.Load() }

// Release returns the team to the pool. runErr is the run's outcome: nil
// sends the team through the reset protocol and parks it; any error
// quarantines it and triggers an async rebuild. Idempotent (extra calls
// are no-ops), so callers can defer a failure-path release and still
// release explicitly on success.
func (l *Lease) Release(runErr error) {
	if !l.released.CompareAndSwap(false, true) {
		return
	}
	p := l.p
	p.releases.Add(1)
	if runErr != nil {
		// The failure latch has tripped (or the run never sanely finished):
		// the team cannot be rearmed, only replaced.
		l.e.setHealth(Suspect)
		p.suspects.Add(1)
		p.quarantine(l.e, l.k)
		return
	}
	p.resets.Add(1)
	if err := l.e.pt.ResetForReuse(); err != nil {
		l.e.setHealth(Suspect)
		p.suspects.Add(1)
		if !p.probe(l.e) {
			p.quarantine(l.e, l.k)
			return
		}
	} else if err := l.e.pt.VerifyClean(); err != nil {
		l.e.setHealth(Suspect)
		p.suspects.Add(1)
		if !p.probe(l.e) {
			p.quarantine(l.e, l.k)
			return
		}
	}
	l.e.setHealth(Healthy)
	p.park(l.k, l.e)
}

// probe triages a suspect team: a trivial barrier run plus a fresh reset
// and audit. Survivors return to service; everything else is quarantined
// by the caller.
func (p *Pool) probe(e *entry) bool {
	p.probes.Add(1)
	t := e.pt.Team()
	if err := e.pt.Run(func(w int) { t.Barrier(w) }); err != nil {
		return false
	}
	if err := e.pt.ResetForReuse(); err != nil {
		return false
	}
	if err := e.pt.VerifyClean(); err != nil {
		return false
	}
	p.probeRescues.Add(1)
	return true
}

// quarantine retires a team and asynchronously builds its replacement.
// The rebuild registers with the WaitGroup under the pool lock so Close's
// Wait can never race a fresh Add.
func (p *Pool) quarantine(e *entry, k key) {
	e.setHealth(Quarantined)
	p.quarantines.Add(1)
	p.mu.Lock()
	closed := p.closed
	if !closed {
		p.rebuilds.Add(1)
	}
	p.mu.Unlock()
	if closed {
		e.pt.Close()
		p.live.Add(-1)
		return
	}
	go func() {
		defer p.rebuilds.Done()
		e.pt.Close()
		p.live.Add(-1)
		p.mu.Lock()
		stop := p.closed || p.opts.NoRebuild
		p.mu.Unlock()
		if stop {
			return
		}
		fresh := &entry{pt: spmdrt.NewPersistentTeam(k.workers, k.kind)}
		fresh.setHealth(Rebuilt)
		p.rebuilt.Add(1)
		p.live.Add(1)
		fresh.setHealth(Healthy)
		p.park(k, fresh)
	}()
}

// park returns a healthy team to the idle set, closing it instead when
// the pool is closed or the key's idle bound is reached.
func (p *Pool) park(k key, e *entry) {
	p.mu.Lock()
	if p.closed || len(p.idle[k]) >= p.opts.MaxIdlePerKey {
		p.mu.Unlock()
		e.pt.Close()
		p.live.Add(-1)
		return
	}
	p.idle[k] = append(p.idle[k], e)
	p.mu.Unlock()
}

// Quiesce blocks until every rebuild triggered so far has finished, so
// tests and shutdown paths can account for all teams.
func (p *Pool) Quiesce() { p.rebuilds.Wait() }

// Close drains the pool: parked teams are closed, future checkouts fail,
// in-flight rebuilds finish without re-parking. Leased teams are closed
// by their own Release (park observes closed). Idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	var all []*entry
	for _, q := range p.idle {
		all = append(all, q...)
	}
	p.idle = map[key][]*entry{}
	p.mu.Unlock()
	for _, e := range all {
		e.pt.Close()
		p.live.Add(-1)
	}
	p.rebuilds.Wait()
}

// Stats is a point-in-time snapshot of the pool gauges.
type Stats struct {
	// Checkouts = Reuses + ColdBuilds.
	Checkouts  int64 `json:"checkouts"`
	Reuses     int64 `json:"reuses"`
	ColdBuilds int64 `json:"cold_builds"`
	Releases   int64 `json:"releases"`
	// Resets counts reset-protocol executions on clean releases.
	Resets int64 `json:"resets"`
	// Suspects/Probes/ProbeRescues/Quarantines/Rebuilt trace the health
	// state machine's transitions.
	Suspects     int64 `json:"suspects"`
	Probes       int64 `json:"probes"`
	ProbeRescues int64 `json:"probe_rescues"`
	Quarantines  int64 `json:"quarantines"`
	Rebuilt      int64 `json:"rebuilt"`
	// Live counts existing teams (parked + leased), Idle the parked ones.
	Live int64 `json:"live_teams"`
	Idle int64 `json:"idle_teams"`
}

// Snapshot reads the gauges.
func (p *Pool) Snapshot() Stats {
	var idle int64
	p.mu.Lock()
	for _, q := range p.idle {
		idle += int64(len(q))
	}
	p.mu.Unlock()
	return Stats{
		Checkouts:    p.checkouts.Load(),
		Reuses:       p.reuses.Load(),
		ColdBuilds:   p.coldBuilds.Load(),
		Releases:     p.releases.Load(),
		Resets:       p.resets.Load(),
		Suspects:     p.suspects.Load(),
		Probes:       p.probes.Load(),
		ProbeRescues: p.probeRescues.Load(),
		Quarantines:  p.quarantines.Load(),
		Rebuilt:      p.rebuilt.Load(),
		Live:         p.live.Load(),
		Idle:         idle,
	}
}

// Publish exposes the gauges as an expvar under the given name, next to
// the "barrier_analysis" compile-side surface. Guarded by a Once because
// expvar.Publish panics on duplicate names; only the first name wins.
func (p *Pool) Publish(name string) {
	p.pubOnce.Do(func() {
		expvar.Publish(name, expvar.Func(func() any { return p.Snapshot() }))
	})
}
