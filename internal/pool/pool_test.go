package pool

import (
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/spmdrt"
)

// TestCheckoutReuse: a released team is handed back on the next checkout
// of the same shape, and the gauges record the hit.
func TestCheckoutReuse(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	l1, err := p.Checkout(4, spmdrt.Central)
	if err != nil {
		t.Fatal(err)
	}
	first := l1.Team()
	team := first.Team()
	if err := l1.Team().Run(func(w int) { team.Barrier(w) }); err != nil {
		t.Fatal(err)
	}
	l1.Release(nil)
	l2, err := p.Checkout(4, spmdrt.Central)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release(nil)
	if l2.Team() != first {
		t.Error("checkout after clean release built a new team instead of reusing")
	}
	if got := l2.Team().Team().Stats.Snapshot().Barriers; got != 0 {
		t.Errorf("reused team carries %d barriers from the previous run", got)
	}
	if l2.Runs() != 2 {
		t.Errorf("Runs = %d, want 2", l2.Runs())
	}
	s := p.Snapshot()
	if s.Checkouts != 2 || s.Reuses != 1 || s.ColdBuilds != 1 {
		t.Errorf("gauges = %+v, want 2 checkouts / 1 reuse / 1 cold build", s)
	}
}

// TestShapeKeying: different (P, kind) shapes never share teams.
func TestShapeKeying(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	a, _ := p.Checkout(2, spmdrt.Central)
	a.Release(nil)
	b, _ := p.Checkout(2, spmdrt.Tree)
	defer b.Release(nil)
	if b.Team() == a.Team() {
		t.Fatal("checkout crossed barrier-kind keys")
	}
	if b.Team().N() != 2 || b.Team().Kind() != spmdrt.Tree {
		t.Fatalf("wrong shape: P=%d kind=%s", b.Team().N(), b.Team().Kind())
	}
}

// TestFailedRunQuarantinesAndRebuilds: releasing with an error retires the
// team, a replacement is rebuilt asynchronously, and the next checkout
// gets a healthy, clean team that is not the poisoned one.
func TestFailedRunQuarantinesAndRebuilds(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	l, err := p.Checkout(4, spmdrt.Dissemination)
	if err != nil {
		t.Fatal(err)
	}
	poisoned := l.Team()
	runErr := l.Team().Run(func(w int) { panic("injected") })
	if runErr == nil {
		t.Fatal("injected panic did not surface")
	}
	l.Release(runErr)
	if l.Health() != Quarantined {
		t.Fatalf("health after failed release = %s, want quarantined", l.Health())
	}
	p.Quiesce()
	s := p.Snapshot()
	if s.Quarantines != 1 || s.Rebuilt != 1 {
		t.Fatalf("gauges = %+v, want 1 quarantine and 1 rebuild", s)
	}
	l2, err := p.Checkout(4, spmdrt.Dissemination)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Release(nil)
	if l2.Team() == poisoned {
		t.Fatal("checkout handed back the quarantined team")
	}
	if err := l2.Team().VerifyClean(); err != nil {
		t.Fatalf("rebuilt team not clean: %v", err)
	}
	team := l2.Team().Team()
	if err := l2.Team().Run(func(w int) { team.Barrier(w) }); err != nil {
		t.Fatalf("rebuilt team cannot run: %v", err)
	}
}

// TestNoRebuildOption: with NoRebuild, a quarantined team is closed and
// the pool shrinks instead of replacing it.
func TestNoRebuildOption(t *testing.T) {
	p := New(Options{NoRebuild: true})
	defer p.Close()
	l, _ := p.Checkout(2, spmdrt.Central)
	l.Release(errors.New("injected failure"))
	p.Quiesce()
	s := p.Snapshot()
	if s.Rebuilt != 0 || s.Live != 0 {
		t.Fatalf("gauges = %+v, want no rebuilds and no live teams", s)
	}
}

// TestIdleBound: surplus clean releases close teams instead of parking
// without bound.
func TestIdleBound(t *testing.T) {
	p := New(Options{MaxIdlePerKey: 2})
	defer p.Close()
	leases := make([]*Lease, 5)
	for i := range leases {
		var err error
		if leases[i], err = p.Checkout(2, spmdrt.Central); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range leases {
		l.Release(nil)
	}
	s := p.Snapshot()
	if s.Idle != 2 || s.Live != 2 {
		t.Fatalf("gauges = %+v, want 2 idle / 2 live with MaxIdlePerKey=2", s)
	}
}

// TestReleaseIdempotent: double release is a no-op.
func TestReleaseIdempotent(t *testing.T) {
	p := New(Options{})
	defer p.Close()
	l, _ := p.Checkout(2, spmdrt.Central)
	l.Release(nil)
	l.Release(errors.New("late failure"))
	s := p.Snapshot()
	if s.Releases != 1 || s.Quarantines != 0 {
		t.Fatalf("gauges = %+v, want exactly one release and no quarantine", s)
	}
}

// TestCloseReleasesEverything: Close drains parked teams and their
// goroutines; checkouts afterwards fail.
func TestCloseReleasesEverything(t *testing.T) {
	baseline := runtime.NumGoroutine()
	p := New(Options{})
	for i := 0; i < 3; i++ {
		l, err := p.Checkout(4, spmdrt.Central)
		if err != nil {
			t.Fatal(err)
		}
		l.Release(nil)
	}
	p.Close()
	if _, err := p.Checkout(4, spmdrt.Central); err == nil {
		t.Fatal("checkout from a closed pool succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline {
		if time.Now().After(deadline) {
			t.Fatalf("pool workers leaked: %d goroutines above baseline",
				runtime.NumGoroutine()-baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if live := p.Snapshot().Live; live != 0 {
		t.Fatalf("live gauge = %d after Close, want 0", live)
	}
}
