#!/usr/bin/env bash
# Full correctness battery: vet, build, race-detector tests, and a
# chaos + sanitizer + watchdog smoke of representative suite kernels.
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos + sanitizer smoke (spmdrun) =="
# Small inputs: chaos adds microsecond delays around every sync, and the
# point here is schedule soundness under adversarial timing, not throughput.
smoke() {
    local kernel=$1; shift
    echo "-- $kernel $*"
    go run ./cmd/spmdrun -kernel "$kernel" -p 4 \
        -watchdog 60s -chaos-seed 7 -sanitize "$@" >/dev/null
}
smoke jacobi1d -param N=64 -param T=4
smoke redblack -param N=64 -param T=3
smoke pipeline -param N=64 -param M=16
smoke dotchain -param N=64
smoke guardedpivot -param N=32

echo "== sabotage must be caught =="
# Dropping a scheduled sync edge has to make spmdrun fail (sanitizer
# violation and/or divergence from the sequential oracle).
if go run ./cmd/spmdrun -kernel jacobi1d -p 4 -param N=64 -param T=4 \
    -watchdog 60s -sanitize -sabotage 2 >/dev/null 2>&1; then
    echo "ERROR: sabotaged schedule went undetected" >&2
    exit 1
fi
echo "-- sabotaged jacobi1d detected (as required)"

echo "ALL CHECKS PASSED"
