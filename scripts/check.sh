#!/usr/bin/env bash
# Full correctness battery: formatting, vet, build, race-detector tests,
# DSL lint and independent schedule-certification smokes, the optimization
# remarks golden + sync-report smokes, a
# chaos + sanitizer + watchdog smoke of representative suite kernels,
# trace-export and Table W smokes, the tracing overhead guard, the
# closure/interp backend-parity gate, the Table T throughput smoke
# with its BENCH_exec.json envelope validation, the pooled 16-kernel
# chaos+sanitizer reuse sweep, the Table P team-provisioning smoke
# with its BENCH_pool.json envelope validation, the durable-profile
# round trip (full-kernel -profile-out/-ledger sweep, byte-identity merge
# gate, 10-run baseline, chaos-stall regression watch), the profiling
# overhead guard, the Table H profile-rollup smoke with its
# BENCH_profile.json envelope validation, the irregular-suite gates
# (value facts, chaos + sanitizer over inspector-synthesized waits),
# the Table I inspector/executor smoke refreshing BENCH_irreg.json,
# the feedback-loop gates (-profile-in round trip, barrierc -fdo remark
# evidence, the Table F no-regression envelope smoke), and the
# run-lifecycle telemetry gates (span-tree goldens, the -spans round
# trip with its phase-sum/wall check, the /healthz + /runs + /spans
# debug-server smoke, the span overhead guard, and the Table S smoke
# refreshing BENCH_spans.json).
# Run from anywhere; operates on the repository containing this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted="$(gofmt -l .)"
if [ -n "$unformatted" ]; then
    echo "ERROR: gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

barrierc="$(mktemp -t barrierc.XXXXXX)"
trap 'rm -f "$barrierc" "${spmdrun_bin:-}" "${spmdprof_bin:-}" "${trace_tmp:-}" "${bench_tmp:-}" "${pool_tmp:-}" "${profh_tmp:-}"; rm -rf "${prof_dir:-}" "${span_dir:-}"' EXIT
go build -o "$barrierc" ./cmd/barrierc

echo "== lint smoke (barrierc -lint) =="
# Exit-code contract: 0 clean (informational notes allowed), 1 findings,
# 2 internal error. Every suite kernel and positive fixture must be clean;
# every negative fixture must exit 1; a missing file must exit 2.
"$barrierc" -list | while read -r k _; do
    "$barrierc" -lint -kernel "$k" >/dev/null || {
        echo "ERROR: suite kernel $k has lint findings" >&2
        exit 1
    }
done
for f in testdata/heat1d.dsl testdata/sweep.dsl testdata/blocked_smooth.dsl; do
    "$barrierc" -lint "$f" >/dev/null || {
        echo "ERROR: $f has lint findings" >&2
        exit 1
    }
done
for f in testdata/lint_oob.dsl testdata/lint_uninit.dsl testdata/lint_dead.dsl \
         testdata/bad_syntax.dsl testdata/bad_semantics.dsl; do
    rc=0; "$barrierc" -lint "$f" >/dev/null || rc=$?
    if [ "$rc" -ne 1 ]; then
        echo "ERROR: $f: lint exit $rc, want 1" >&2
        exit 1
    fi
done
rc=0; "$barrierc" -lint /nonexistent.dsl >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 2 ]; then
    echo "ERROR: missing-file lint exit $rc, want 2" >&2
    exit 1
fi
echo "-- lint exit codes verified (suite clean, fixtures exit 1, internal error exit 2)"

echo "== certify sweep (barrierc -certify) =="
# Every suite kernel's optimized schedule must pass the independent static
# certifier; a sabotaged schedule must be rejected with exit 1.
"$barrierc" -list | while read -r k _; do
    "$barrierc" -certify -kernel "$k" >/dev/null || {
        echo "ERROR: kernel $k failed certification" >&2
        exit 1
    }
done
rc=0; "$barrierc" -certify -kernel jacobi1d -sabotage 2 >/dev/null 2>&1 || rc=$?
if [ "$rc" -ne 1 ]; then
    echo "ERROR: sabotaged jacobi1d certify exit $rc, want 1" >&2
    exit 1
fi
echo "-- all suite kernels certified; sabotaged schedule rejected"

echo "== remarks smoke (barrierc -remarks) =="
# The remarks envelope is a published, byte-stable artifact: the emitted
# JSON must match the checked-in golden fixture exactly (the Go golden
# test pins the same bytes; this is the CLI path), and every suite kernel
# must render a remark per sync site without error.
"$barrierc" -remarks -json -kernel jacobi2d | diff -u cmd/barrierc/testdata/jacobi2d_remarks.json - || {
    echo "ERROR: barrierc -remarks -json drifted from golden (go test ./cmd/barrierc -run RemarksGolden -update)" >&2
    exit 1
}
"$barrierc" -list | while read -r k _; do
    "$barrierc" -remarks -kernel "$k" >/dev/null || {
        echo "ERROR: kernel $k failed -remarks" >&2
        exit 1
    }
done
echo "-- remarks golden byte-exact; all suite kernels render"

echo "== sync report smoke (spmdrun -report) =="
# The static<->runtime join: jacobi2d at P=8 must produce the ranked
# kept-barrier table with both neighbor sites present.
report="$(go run ./cmd/spmdrun -kernel jacobi2d -p 8 -report 2>/dev/null)"
echo "$report" | grep -q "sync report: jacobi2d" || {
    echo "ERROR: spmdrun -report missing report header" >&2
    exit 1
}
if [ "$(echo "$report" | grep -c "neighbor")" -lt 2 ]; then
    echo "ERROR: spmdrun -report: expected 2 kept neighbor sites on jacobi2d" >&2
    exit 1
fi
echo "-- jacobi2d sync report ranked $(echo "$report" | grep -c neighbor) kept sites"

echo "== chaos + sanitizer smoke (spmdrun) =="
# Small inputs: chaos adds microsecond delays around every sync, and the
# point here is schedule soundness under adversarial timing, not throughput.
smoke() {
    local kernel=$1; shift
    echo "-- $kernel $*"
    go run ./cmd/spmdrun -kernel "$kernel" -p 4 \
        -watchdog 60s -chaos-seed 7 -sanitize "$@" >/dev/null
}
smoke jacobi1d -param N=64 -param T=4
smoke redblack -param N=64 -param T=3
smoke pipeline -param N=64 -param M=16
smoke dotchain -param N=64
smoke guardedpivot -param N=32

echo "== irregular suite gates (facts, certify, chaos, inspector) =="
# The irregular-access tier: the -list-driven sweeps above already lint,
# certify and remark every irregular kernel; here the value facts must
# actually print, and each kernel must survive adversarial timing with
# the sanitizer auditing the inspector-synthesized waits while the
# runtime inspector reports per-site scan statistics.
# Captured first: grep -q exits at first match, and under pipefail the
# producer's SIGPIPE would intermittently fail an otherwise-passing gate.
irreg_facts="$(go run ./cmd/barrierc -irreg -kernel permcopy)"
echo "$irreg_facts" | grep -q "permutation" || {
    echo "ERROR: barrierc -irreg lost the permutation fact on permcopy" >&2
    exit 1
}
for k in permcopy gatherscatter spmvcsr meshsmooth edgerelax; do
    echo "-- $k"
    out="$(go run ./cmd/spmdrun -kernel "$k" -p 4 \
        -watchdog 60s -chaos-seed 7 -sanitize)"
    if [ "$k" != permcopy ]; then
        # permcopy is fully static (no inspector sites); the rest must
        # report inspector scans in the run summary.
        echo "$out" | grep -q "inspector:" || {
            echo "ERROR: $k: no inspector summary in spmdrun output" >&2
            exit 1
        }
    fi
done
echo "-- irregular kernels chaos-clean under the sanitizer; inspector stats reported"

echo "== trace smoke (spmdrun -trace) =="
# The Chrome trace export must be valid JSON with per-worker tracks; the
# schema proper is pinned by TestTraceChromeSchema, this is the CLI path.
trace_tmp="$(mktemp -t spmdtrace.XXXXXX.json)"
go run ./cmd/spmdrun -kernel jacobi2d -p 8 -param N=64 -param T=4 \
    -trace "$trace_tmp" -trace-summary >/dev/null 2>&1
if command -v python3 >/dev/null 2>&1; then
    python3 -c "import json,sys; d=json.load(open(sys.argv[1])); assert d['traceEvents'], 'empty traceEvents'" "$trace_tmp"
fi
echo "-- wrote and validated $(wc -c <"$trace_tmp") bytes of trace JSON"

echo "== tracing overhead guard =="
# Fails if tracing-off regresses >2% against the recorded machine-local
# baseline (scripts/.overhead_baseline, created on first run) or if
# tracing-on costs more than 10% over tracing-off. Env-gated so the
# timing-sensitive comparison never runs under plain 'go test ./...'.
OVERHEAD_GUARD=1 go test -run TestTracingOverheadGuard ./internal/exec -count=1 -v

echo "== benchtab Table W smoke =="
# The wait-decomposition table must build and report optimized wait below
# baseline wait on at least half the suite kernels (acceptance criterion).
tablew="$(go run ./cmd/benchtab -p 4 -table W)"
echo "$tablew" | tail -n 3
echo "$tablew" | grep -q "optimized wait < baseline wait" || {
    echo "ERROR: Table W footer missing" >&2
    exit 1
}
wins=$(echo "$tablew" | sed -n 's/.*optimized wait < baseline wait on \([0-9]*\)\/\([0-9]*\) kernels.*/\1 \2/p')
read -r won total <<<"$wins"
if [ "$won" -lt $(( (total + 1) / 2 )) ]; then
    echo "ERROR: optimized wait beat baseline on only $won/$total kernels (need >= half)" >&2
    exit 1
fi

echo "== backend parity gate =="
# The closure-compiled backend must reproduce the tree-walking interpreter
# backend bit for bit on every suite kernel (rank-ordered reductions make
# both deterministic). This is the differential gate behind the compiled
# executor: any float divergence is a lowering bug.
go test -run TestBackendParity ./internal/suite -count=1

echo "== benchtab Table T smoke (BENCH_exec.json) =="
# The backend-throughput table must build, emit a valid versioned JSON
# envelope, and show the closure backend >= 3x interpreter throughput on
# the compute-bound acceptance kernels (jacobi2d, matmul) at P=8.
bench_tmp="$(mktemp -t benchexec.XXXXXX.json)"
go run ./cmd/benchtab -table T -p 8 -kernels jacobi2d,matmul -out "$bench_tmp" | tail -n 4
if command -v python3 >/dev/null 2>&1; then
    python3 - "$bench_tmp" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-exec", d
rows = {r["kernel"]: r for r in d["payload"]["rows"]}
for k in ("jacobi2d", "matmul"):
    assert k in rows, f"{k} missing from BENCH_exec.json"
    s = rows[k]["speedup"]
    assert s >= 3.0, f"{k}: closure speedup {s:.2f}x < 3x acceptance floor"
print("-- BENCH_exec.json valid; speedups:",
      ", ".join(f"{k}={rows[k]['speedup']:.2f}x" for k in rows))
EOF
fi

echo "== pooled reuse sweep (chaos + sanitizer, one pool) =="
# The tentpole robustness gate: >= 100 back-to-back runs across the
# 16-kernel suite on a single team pool, all chaos-perturbed and
# sanitized, plus a stall-injected retry/fallback leg — every run must
# end correct, with zero cross-run stat/trace/sanitizer contamination,
# quarantines matched by rebuilds, and zero goroutine growth.
sweep_out="$(go test -run TestPooledChaosSanitizerReuseSweep ./internal/exec -count=1 -v)" || {
    echo "$sweep_out" >&2
    echo "ERROR: pooled reuse sweep failed" >&2
    exit 1
}
echo "$sweep_out" | grep "sweep:"

echo "== benchtab Table P smoke (BENCH_pool.json) =="
# The team-provisioning table must build, emit a valid versioned JSON
# envelope, and show pooled provisioning overhead >= 5x below cold spawn
# at P=8 (acceptance floor; see docs/POOL.md for the measurement design).
pool_tmp="$(mktemp -t benchpool.XXXXXX.json)"
go run ./cmd/benchtab -table P -out "$pool_tmp" >/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$pool_tmp" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-pool", d
rows = {r["workers"]: r for r in d["payload"]["rows"]}
for p in (2, 4, 8, 16):
    assert p in rows, f"P={p} missing from BENCH_pool.json"
    assert rows[p]["cold_ns"] > 0 and rows[p]["pooled_ns"] > 0, rows[p]
s = rows[8]["speedup"]
assert s >= 5.0, f"P=8 pooled overhead speedup {s:.2f}x < 5x acceptance floor"
print(f"-- BENCH_pool.json valid; P=8 provisioning speedup {s:.2f}x")
EOF
fi
rm -f "$pool_tmp"

echo "== profiling overhead guard =="
# The durable-profile path (-profile-out): building and encoding the
# profile after a traced run must cost <= 3% over the tracing-on
# baseline. Env-gated like the tracing guard.
OVERHEAD_GUARD=1 go test -run TestProfilingOverheadGuard ./internal/suite -count=1 -v

echo "== durable profile round trip (spmdrun -profile-out/-ledger + spmdprof) =="
spmdrun_bin="$(mktemp -t spmdrun.XXXXXX)"
spmdprof_bin="$(mktemp -t spmdprof.XXXXXX)"
go build -o "$spmdrun_bin" ./cmd/spmdrun
go build -o "$spmdprof_bin" ./cmd/spmdprof
prof_dir="$(mktemp -d -t spmdprofiles.XXXXXX)"

# 16-kernel sweep: every suite kernel emits a durable profile and appends
# a record to one shared ledger; the ledger summary must see every kernel
# as its own (program, schedule, config) group.
nkernels=0
while read -r k _; do
    "$spmdrun_bin" -kernel "$k" -p 4 \
        -profile-out "$prof_dir/$k.json" -ledger "$prof_dir/sweep.jsonl" \
        >/dev/null 2>/dev/null || {
        echo "ERROR: kernel $k failed with -profile-out/-ledger" >&2
        exit 1
    }
    nkernels=$((nkernels + 1))
done < <("$barrierc" -list)
sweep_summary="$("$spmdprof_bin" ledger "$prof_dir/sweep.jsonl")"
echo "$sweep_summary" | grep -qF "$nkernels record(s), $nkernels group(s)" || {
    echo "ERROR: sweep ledger does not show $nkernels one-run groups" >&2
    echo "$sweep_summary" | head -n 1 >&2
    exit 1
}
echo "-- $nkernels kernels swept; ledger groups match"

# Round-trip determinism gate: spmdprof merge of a single profile must
# re-emit its exact bytes (same sketch, same ordering, same envelope).
"$spmdprof_bin" merge "$prof_dir/jacobi2d.json" >"$prof_dir/roundtrip.json"
cmp -s "$prof_dir/jacobi2d.json" "$prof_dir/roundtrip.json" || {
    echo "ERROR: merge of one profile is not byte-identical to its input" >&2
    exit 1
}
echo "-- single-profile merge byte-identical (round-trip determinism)"

# 10-run jacobi2d baseline: merge must succeed and a clean 11th run must
# diff quiet (exit 0); an injected chaos-stall run must be flagged
# (exit 1) and the ledger watch must name it.
for i in $(seq 1 10); do
    "$spmdrun_bin" -kernel jacobi2d -p 4 -param N=64 -param T=4 \
        -profile-out "$prof_dir/j$i.json" -ledger "$prof_dir/jacobi.jsonl" \
        >/dev/null 2>/dev/null
done
"$spmdprof_bin" merge -o "$prof_dir/baseline.json" "$prof_dir"/j[0-9]*.json 2>/dev/null
"$spmdrun_bin" -kernel jacobi2d -p 4 -param N=64 -param T=4 \
    -profile-out "$prof_dir/clean.json" >/dev/null 2>/dev/null
"$spmdprof_bin" diff "$prof_dir/baseline.json" "$prof_dir/clean.json" >/dev/null || {
    echo "ERROR: clean run flagged as regression against its own baseline" >&2
    exit 1
}
"$spmdrun_bin" -kernel jacobi2d -p 4 -param N=64 -param T=4 \
    -chaos-seed 7 -chaos-stall 5ms \
    -profile-out "$prof_dir/chaos.json" -ledger "$prof_dir/jacobi.jsonl" \
    >/dev/null 2>/dev/null
rc=0; "$spmdprof_bin" diff "$prof_dir/baseline.json" "$prof_dir/chaos.json" \
    >"$prof_dir/diff.txt" || rc=$?
if [ "$rc" -ne 1 ] || ! grep -q "regression" "$prof_dir/diff.txt"; then
    echo "ERROR: injected 5ms chaos stall not flagged (exit $rc)" >&2
    cat "$prof_dir/diff.txt" >&2
    exit 1
fi
rc=0; "$spmdprof_bin" ledger -watch "$prof_dir/jacobi.jsonl" \
    >"$prof_dir/watch.txt" || rc=$?
if [ "$rc" -ne 1 ] || ! grep -q "worst site" "$prof_dir/watch.txt"; then
    echo "ERROR: ledger watch missed the chaos-stall run (exit $rc)" >&2
    cat "$prof_dir/watch.txt" >&2
    exit 1
fi
echo "-- 10-run baseline quiet on clean run; chaos stall flagged by diff and ledger watch"

echo "== benchtab Table H smoke (BENCH_profile.json) =="
# The sync-wait profile rollup must build and emit a valid versioned
# JSON envelope with per-kernel merged quantiles.
profh_tmp="$(mktemp -t benchprofile.XXXXXX.json)"
go run ./cmd/benchtab -table H -p 4 -kernels jacobi2d,pipeline -samples 4 \
    -out "$profh_tmp" | tail -n 3
if command -v python3 >/dev/null 2>&1; then
    python3 - "$profh_tmp" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-profile", d
rows = {r["kernel"]: r for r in d["payload"]["rows"]}
for k in ("jacobi2d", "pipeline"):
    assert k in rows, f"{k} missing from BENCH_profile.json"
    r = rows[k]
    assert r["sites"] > 0 and r["p99_ns"] >= r["p50_ns"] >= 0, r
print("-- BENCH_profile.json valid; p99:",
      ", ".join(f"{k}={rows[k]['p99_ns']}ns" for k in rows))
EOF
fi

echo "== benchtab Table I smoke (BENCH_irreg.json) =="
# The inspector/executor envelope: Table I must build, refresh the
# committed BENCH_irreg.json artifact at the repo root, and show >= 50%
# dynamic barrier-crossing elimination on every irregular kernel (the
# acceptance floor), with the fully static kernels at 100%.
go run ./cmd/benchtab -table I -p 8 -out BENCH_irreg.json | tail -n 4
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_irreg.json <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-irreg", d
rows = {r["kernel"]: r for r in d["payload"]["rows"]}
for k in ("permcopy", "gatherscatter", "spmvcsr", "meshsmooth", "edgerelax"):
    assert k in rows, f"{k} missing from BENCH_irreg.json"
    r = rows[k]
    assert r["reduction"] >= 0.5, f"{k}: reduction {r['reduction']:.3f} < 0.5 floor"
    assert r["base_barriers"] > r["opt_barriers"], r
assert d["payload"]["mean_reduction"] >= 0.5, d["payload"]["mean_reduction"]
print("-- BENCH_irreg.json valid; reductions:",
      ", ".join(f"{k}={rows[k]['reduction']:.0%}" for k in rows))
EOF
fi

echo "== feedback loop gates (-profile-in, barrierc -fdo, Table F) =="
# The profile-guided re-optimization tier: record a profile, feed it back
# through barrierc (the remarks must carry fdo: evidence on every flipped
# site) and spmdrun (the re-optimized run must apply certified flips, stay
# certified and declare its forced tracing), then the Table F smoke must
# emit a valid envelope with zero kernels regressed beyond their paired
# noise bars.
"$spmdrun_bin" -kernel meshsmooth -p 4 -profile-out "$prof_dir/fdo_prof.json" \
    >/dev/null 2>/dev/null
"$barrierc" -kernel meshsmooth -fdo "$prof_dir/fdo_prof.json" -remarks \
    >"$prof_dir/fdo_remarks.txt"
grep -q "fdo:" "$prof_dir/fdo_remarks.txt" || {
    echo "ERROR: barrierc -fdo -remarks carries no fdo: evidence on meshsmooth" >&2
    exit 1
}
"$spmdrun_bin" -kernel meshsmooth -p 4 -profile-in "$prof_dir/fdo_prof.json" \
    -json >"$prof_dir/fdo_run.json" 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$prof_dir/fdo_run.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["tool"] == "spmdrun", d
p = d["payload"]
assert p["certified"], "re-optimized run not certified"
assert p["tracing_forced"], "-profile-in run must declare forced tracing"
f = p.get("fdo") or {}
assert f.get("flips", 0) > 0, "feedback pass applied no flips on meshsmooth"
for dec in f.get("decisions", []):
    if dec["action"] in ("weaken", "promote"):
        assert dec["certified"], f"uncertified flip: {dec}"
print(f"-- -profile-in applied {f['flips']} certified flip(s); run certified")
EOF
fi
go run ./cmd/benchtab -table F -p 4 -kernels meshsmooth,spmvcsr -samples 10 \
    -out "$prof_dir/tablef.json" | tail -n 3
if command -v python3 >/dev/null 2>&1; then
    python3 - "$prof_dir/tablef.json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-fdo", d
p = d["payload"]
rows = {r["kernel"]: r for r in p["rows"]}
for k in ("meshsmooth", "spmvcsr"):
    assert k in rows, f"{k} missing from Table F output"
    assert rows[k]["flips"] > 0, f"{k}: no flips applied"
    assert not rows[k].get("regressed"), \
        f"{k}: profile-guided schedule regressed beyond its noise bar: {rows[k]}"
assert p["regressed"] == 0, p
print("-- Table F envelope valid; saves:",
      ", ".join(f"{k}={rows[k]['save_ns']}ns" for k in rows))
EOF
fi

echo "== span-tree goldens (lifecycle tree, Chrome interleaving) =="
# The jacobi2d span tree and its Perfetto interleaving are pinned
# artifacts: the tree must match the golden byte for byte, be
# deterministic across runs, and sum its top-level phases to the wall.
go test -run 'TestSpanTree|TestChromeExport|TestPhaseDurations|TestExecuteSpanAttrs' \
    ./internal/telemetry -count=1

echo "== spans round trip (spmdrun -spans -json) =="
# One observed run: the envelope and the spans file must share a trace
# id, cover every lifecycle phase, and the top-level phase durations
# must sum to the envelope wall within 5% (the acceptance bound).
span_dir="$(mktemp -d -t spmdspans.XXXXXX)"
"$spmdrun_bin" -kernel jacobi2d -p 4 -param N=64 -param T=4 \
    -json -spans "$span_dir/spans.json" >"$span_dir/run.json" 2>/dev/null
if command -v python3 >/dev/null 2>&1; then
    python3 - "$span_dir/run.json" "$span_dir/spans.json" <<'EOF'
import json, sys
run = json.load(open(sys.argv[1])); spans = json.load(open(sys.argv[2]))
assert run["tool"] == "spmdrun", run["tool"]
assert spans["schema_version"] == 1 and spans["tool"] == "spmdrun-spans", spans
p, sp = run["payload"], spans["payload"]
assert p["trace_id"] and p["trace_id"] == sp["trace_id"], (p.get("trace_id"), sp.get("trace_id"))
wall = p["wall_ns"]
assert wall > 0 and wall == sp["wall_ns"], (wall, sp["wall_ns"])
names = {s["name"] for s in sp["spans"]}
for phase in ("run", "compile", "execute", "setup", "attempt", "team run", "verify"):
    assert phase in names, f"missing phase span {phase!r}: {sorted(names)}"
assert all(s["dur_ns"] >= 0 for s in sp["spans"]), "open span leaked into export"
tops = sum(s["dur_ns"] for s in sp["spans"] if s.get("parent_id") == 1)
ratio = tops / wall
assert 0.95 <= ratio <= 1.05, f"phase sum / wall = {ratio:.3f}, want within 5%"
print(f"-- trace {p['trace_id']}: {len(sp['spans'])} spans, phase-sum/wall {ratio:.3f}")
EOF
fi

echo "== debug server smoke (/healthz, /runs, /spans/<id>, /metrics) =="
# One-shot spmdrun with a linger window: the debug endpoints must serve
# a healthy status, the run's trace id (newest first), the span export
# by id, and the per-site wait families in the Prometheus exposition.
if command -v python3 >/dev/null 2>&1; then
    "$spmdrun_bin" -kernel jacobi2d -p 4 -param N=64 -param T=4 \
        -metrics-addr 127.0.0.1:0 -metrics-linger 30s \
        >/dev/null 2>"$span_dir/metrics.err" &
    span_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr="$(sed -n 's#^metrics:  serving http://\([^/]*\)/metrics.*#\1#p' "$span_dir/metrics.err")"
        [ -n "$addr" ] && break
        sleep 0.1
    done
    if [ -z "$addr" ]; then
        echo "ERROR: spmdrun -metrics-addr never announced its address" >&2
        cat "$span_dir/metrics.err" >&2
        kill "$span_pid" 2>/dev/null || true
        exit 1
    fi
    # The run itself must finish (lingering) before the ring has the run.
    for _ in $(seq 1 100); do
        grep -q "lingering" "$span_dir/metrics.err" && break
        sleep 0.1
    done
    python3 - "$addr" <<'EOF'
import json, sys, urllib.request
addr = sys.argv[1]
get = lambda path: urllib.request.urlopen(f"http://{addr}{path}", timeout=5).read()
h = json.loads(get("/healthz"))
assert h["status"] == "ok" and h["runs"] >= 1, h
runs = json.loads(get("/runs?n=1"))
assert len(runs) == 1 and runs[0]["trace_id"] and runs[0]["outcome"] == "ok", runs
tid = runs[0]["trace_id"]
spans = json.loads(get(f"/spans/{tid}"))
assert spans["tool"] == "spmdrun-spans", spans["tool"]
assert spans["payload"]["trace_id"] == tid, spans["payload"]["trace_id"]
prom = get("/metrics").decode()
assert "spmd_runs_total 1" in prom, prom[:400]
assert "spmd_site_wait_ns{" in prom, "per-site wait family missing"
assert "spmd_run_elapsed_ns{" in prom, "run latency quantiles missing"
print(f"-- /healthz ok; /runs newest trace {tid}; /spans round trip; /metrics has site waits")
EOF
    kill "$span_pid" 2>/dev/null || true
    wait "$span_pid" 2>/dev/null || true
fi

echo "== span overhead guard =="
# The span layer's cost envelope, PR-2 style (env-gated, noise-floored,
# one re-measure at double depth before a row may judge regressed):
# spans-on must stay within 2% of spans-off whole-request walls.
OVERHEAD_GUARD=1 go test -run TestSpanOverheadGuard \
    ./internal/suite -count=1 -v

echo "== benchtab Table S smoke (BENCH_spans.json) =="
# Table S must build, refresh the committed BENCH_spans.json artifact,
# and report zero rows regressed beyond the 2% overhead envelope.
go run ./cmd/benchtab -table S -p 4 -out BENCH_spans.json | tail -n 3
if command -v python3 >/dev/null 2>&1; then
    python3 - BENCH_spans.json <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema_version"] == 1, d
assert d["tool"] == "benchtab-spans", d
p = d["payload"]
assert p["threshold_pct"] == 2.0, p["threshold_pct"]
rows = {r["kernel"]: r for r in p["rows"]}
for k in ("jacobi2d", "dotchain", "tred2like"):
    assert k in rows, f"{k} missing from BENCH_spans.json"
    r = rows[k]
    assert r["off_ns"] > 0 and r["on_ns"] > 0 and r["spans"] >= 8, r
    assert not r["regressed"], f"{k}: span overhead {r['overhead_pct']:.2f}% regressed"
assert p["regressions"] == 0, p["regressions"]
print("-- BENCH_spans.json valid; overhead:",
      ", ".join(f"{k}={rows[k]['overhead_pct']:.2f}%" for k in rows))
EOF
fi

echo "== sabotage must be caught =="
# Dropping a scheduled sync edge has to make spmdrun fail (sanitizer
# violation and/or divergence from the sequential oracle).
if go run ./cmd/spmdrun -kernel jacobi1d -p 4 -param N=64 -param T=4 \
    -watchdog 60s -sanitize -sabotage 2 >/dev/null 2>&1; then
    echo "ERROR: sabotaged schedule went undetected" >&2
    exit 1
fi
echo "-- sabotaged jacobi1d detected (as required)"

echo "ALL CHECKS PASSED"
